#include "core/innet/innet_engine.h"

#include <algorithm>

#include "util/check.h"
#include "util/mathx.h"

namespace ttmqo {
namespace {

constexpr std::size_t kAbortPayloadBytes = 2;

// Ticks and slots older than this are pruned from per-node bookkeeping.
constexpr SimDuration kPruneHorizonMs = 32 * kMinEpochDurationMs;

// A payload that survives an ARQ give-up is re-routed through fresh
// parents at most this many times before the loss is accepted.
constexpr int kMaxReroutes = 2;

// A node stays in a query's expected-contributor set for this many epochs
// after its last row.  Longer horizons repair deeper outages but NACK more
// nodes whose readings merely drifted out of the predicate range.
constexpr int kRepairHistoryEpochs = 3;

void MergePartialVectors(std::vector<PartialAggregate>& into,
                         const std::vector<PartialAggregate>& from) {
  Check(into.size() == from.size(),
        "partial aggregate vectors must align by spec");
  for (std::size_t i = 0; i < into.size(); ++i) into[i].Merge(from[i]);
}

std::vector<QueryId> AllQueriesOf(
    const std::map<NodeId, std::vector<QueryId>>& dest_queries) {
  std::vector<QueryId> queries;
  for (const auto& [dest, qs] : dest_queries) {
    queries.insert(queries.end(), qs.begin(), qs.end());
  }
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return queries;
}

}  // namespace

void ApplyReliabilityProfile(ReliabilityProfile profile,
                             InNetOptions& options) {
  switch (profile) {
    case ReliabilityProfile::kOff:
      return;
    case ReliabilityProfile::kArq:
      options.arq.enabled = true;
      [[fallthrough]];
    case ReliabilityProfile::kHarden:
      // The hardening bundle the chaos soak validates: liveness-driven
      // parent failover, dissemination re-floods, duplicate suppression.
      options.liveness_timeout_ms = 8192;
      options.dissemination_retries = 2;
      options.duplicate_suppression = true;
      return;
  }
}

InNetworkEngine::InNetworkEngine(Network& network, const FieldModel& field,
                                 ResultSink* sink, InNetOptions options)
    : network_(network),
      field_(field),
      sink_(sink),
      options_(options),
      tree_(network.topology(), network.link_quality()),
      srt_(network.topology(), tree_),
      levels_(network.topology()),
      nodes_(network.topology().size()) {
  if (options_.arq.enabled) {
    arq_.emplace(network_, options_.arq);
    arq_->SetQuarantineHook(
        [this](NodeId self, NodeId neighbor, SimTime until) {
          // The sink is exempt: routing away from the base station only
          // adds hops, and every detour lands on this same last link
          // anyway.  Quarantining it cascades into a rerouting storm.
          if (neighbor == kBaseStationId) return;
          // Feed the ARQ's flapping detection into the parent blacklist so
          // route selection avoids the neighbor for the same horizon.
          Suspicion& suspicion = nodes_[self].suspicion[neighbor];
          suspicion.blacklisted_until =
              std::max(suspicion.blacklisted_until, until);
          if (trace_ != nullptr) {
            EmitTrace(TraceEvent("tier2.quarantine")
                          .With("node", static_cast<std::int64_t>(self))
                          .With("neighbor",
                                static_cast<std::int64_t>(neighbor))
                          .With("until", until));
          }
        });
    arq_->SetGiveUpHook([this](const ArqTransport::GiveUpInfo& info) {
      OnArqGiveUp(info);
    });
    for (NodeId node : network_.topology().AllNodes()) {
      arq_->Attach(node, [this, node](const Message& msg, bool addressed) {
        HandleMessage(node, msg, addressed);
      });
    }
  } else {
    for (NodeId node : network_.topology().AllNodes()) {
      network_.SetReceiver(node, [this, node](const Message& msg,
                                              bool addressed) {
        HandleMessage(node, msg, addressed);
      });
    }
  }
}

SimDuration InNetworkEngine::SourceJitter(NodeId node) const {
  if (options_.source_jitter_ms <= 0) return 0;
  return (static_cast<SimDuration>(node) * 37) %
         (options_.source_jitter_ms + 1);
}

SimDuration InNetworkEngine::SlotOffset(NodeId node) const {
  return static_cast<SimDuration>(network_.topology().MaxDepth() -
                                  levels_.LevelOf(node)) *
             options_.agg_slot_ms +
         SourceJitter(node);
}

// -----------------------------------------------------------------------
// Submission / termination (base station API)
// -----------------------------------------------------------------------

void InNetworkEngine::EmitTrace(TraceEvent event) {
  event.time = network_.sim().Now();
  trace_->Emit(event);
}

void InNetworkEngine::SubmitQuery(const Query& query) {
  CheckArg(!bs_queries_.contains(query.id()),
           "InNetworkEngine: duplicate query id");
  bs_queries_.emplace(query.id(), BsQueryState(query));
  nodes_[kBaseStationId].prop_round[query.id()] =
      std::numeric_limits<int>::max();
  if (trace_ != nullptr) {
    EmitTrace(TraceEvent("tier2.submit")
                  .With("query", static_cast<std::int64_t>(query.id()))
                  .With("epoch_ms", static_cast<std::int64_t>(query.epoch()))
                  .With("active",
                        static_cast<std::int64_t>(bs_queries_.size())));
  }

  Message msg;
  msg.cls = MessageClass::kQueryPropagation;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = kBaseStationId;
  msg.payload_bytes = PropagationPayloadBytes(query) + 1;  // piggyback bit
  msg.payload = std::make_shared<InNetPropagationPayload>(
      query, /*has_data=*/false);
  network_.Send(std::move(msg));

  // Dissemination retries: re-flood with an advancing round number so
  // nodes that were unreachable during the initial flood (transient
  // outages) still learn the query; termination aborts the retry chain.
  for (int round = 1; round <= options_.dissemination_retries; ++round) {
    network_.sim().ScheduleAfter(
        static_cast<SimDuration>(round) *
            options_.dissemination_retry_interval_ms,
        [this, id = query.id(), round]() {
          const auto it = bs_queries_.find(id);
          if (it == bs_queries_.end() || it->second.terminated) return;
          if (trace_ != nullptr) {
            EmitTrace(TraceEvent("tier2.redisseminate")
                          .With("query", static_cast<std::int64_t>(id))
                          .With("round", static_cast<std::int64_t>(round)));
          }
          Message refresh;
          refresh.cls = MessageClass::kQueryPropagation;
          refresh.mode = AddressMode::kBroadcast;
          refresh.sender = kBaseStationId;
          refresh.payload_bytes =
              PropagationPayloadBytes(it->second.query) + 1;
          refresh.payload = std::make_shared<InNetPropagationPayload>(
              it->second.query, /*has_data=*/false, round);
          network_.Send(std::move(refresh));
        });
  }

  ScheduleEpochClose(query.id(),
                     AlignUp(network_.sim().Now() + 1, query.epoch()));
}

void InNetworkEngine::TerminateQuery(QueryId id) {
  auto it = bs_queries_.find(id);
  CheckArg(it != bs_queries_.end() && !it->second.terminated,
           "InNetworkEngine: terminating unknown or finished query");
  it->second.terminated = true;
  it->second.rows.clear();
  it->second.partials.clear();
  it->second.no_data.clear();
  it->second.last_contributed.clear();
  it->second.agg_counts.clear();
  nodes_[kBaseStationId].seen_abort.insert(id);
  if (trace_ != nullptr) {
    EmitTrace(TraceEvent("tier2.terminate")
                  .With("query", static_cast<std::int64_t>(id)));
  }

  Message msg;
  msg.cls = MessageClass::kQueryAbort;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = kBaseStationId;
  msg.payload_bytes = kAbortPayloadBytes;
  msg.payload = std::make_shared<QueryAbortPayload>(id);
  network_.Send(std::move(msg));
}

// -----------------------------------------------------------------------
// Message handling
// -----------------------------------------------------------------------

void InNetworkEngine::HandleMessage(NodeId self, const Message& msg,
                                    bool addressed) {
  NodeState& state = nodes_[self];
  // Liveness: anything heard on the broadcast channel proves the sender is
  // alive (only tracked when the failover knob is on).
  if (options_.liveness_timeout_ms > 0) NoteAlive(self, msg.sender);

  if (const auto* prop =
          dynamic_cast<const InNetPropagationPayload*>(msg.payload.get())) {
    const QueryId id = prop->query.id();
    // Piggybacked data bit: learn it from every copy of the flood, even
    // duplicates, but only about upper-level neighbors.
    if (prop->sender_has_data) {
      NoteHasData(self, msg.sender, {id}, network_.sim().Now());
    }
    // A terminated query must never be reinstalled by a late re-flood.
    if (state.seen_abort.contains(id)) return;
    // Round-based dedup: each node installs once and re-forwards once per
    // dissemination round.
    const auto round_it = state.prop_round.find(id);
    const bool first_time = round_it == state.prop_round.end();
    if (!first_time && round_it->second >= prop->round) return;
    state.prop_round[id] = prop->round;
    if (self == kBaseStationId) return;
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
    bool has_data = false;
    if (first_time && ShouldInstall(self, prop->query)) {
      InstallQuery(self, prop->query);
      // Evaluate the piggybacked "I have data" bit from the current field.
      const Reading sample = field_.SampleReading(
          self, network_.topology().PositionOf(self),
          prop->query.AcquiredAttributes(), network_.sim().Now());
      has_data = prop->query.predicates().Matches(sample);
    } else if (!first_time && state.active.contains(id)) {
      const Reading sample = field_.SampleReading(
          self, network_.topology().PositionOf(self),
          prop->query.AcquiredAttributes(), network_.sim().Now());
      has_data = prop->query.predicates().Matches(sample);
    }
    if (!ShouldForwardPropagation(self, prop->query)) return;
    state.relayed_propagation.insert(id);
    const Query query = prop->query;
    const int round = prop->round;
    network_.sim().ScheduleAfter(
        SourceJitter(self) + 1, [this, self, query, has_data, round]() {
          if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
          Message fwd;
          fwd.cls = MessageClass::kQueryPropagation;
          fwd.mode = AddressMode::kBroadcast;
          fwd.sender = self;
          fwd.payload_bytes = PropagationPayloadBytes(query) + 1;
          fwd.payload = std::make_shared<InNetPropagationPayload>(
              query, has_data, round);
          network_.Send(std::move(fwd));
        });
    return;
  }

  if (const auto* abort =
          dynamic_cast<const QueryAbortPayload*>(msg.payload.get())) {
    if (state.seen_abort.contains(abort->query)) return;
    state.seen_abort.insert(abort->query);
    if (self == kBaseStationId) return;
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
    RemoveQuery(self, abort->query);
    // The abort follows the propagation's prune.
    if (!state.relayed_propagation.contains(abort->query)) return;
    state.relayed_propagation.erase(abort->query);
    const QueryId id = abort->query;
    network_.sim().ScheduleAfter(SourceJitter(self) + 1, [this, self, id]() {
      if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
      Message fwd;
      fwd.cls = MessageClass::kQueryAbort;
      fwd.mode = AddressMode::kBroadcast;
      fwd.sender = self;
      fwd.payload_bytes = kAbortPayloadBytes;
      fwd.payload = std::make_shared<QueryAbortPayload>(id);
      network_.Send(std::move(fwd));
    });
    return;
  }

  if (const auto* row =
          dynamic_cast<const SharedRowPayload*>(msg.payload.get())) {
    // The broadcast channel teaches us who has data: a row batch heard
    // from a neighbor that contains the neighbor's own reading marks it.
    for (const RowEntry& entry : row->entries) {
      if (entry.row.node() == msg.sender) {
        NoteHasData(self, msg.sender, entry.queries, row->epoch_time);
      }
    }
    if (!addressed) return;
    const auto it = row->dest_queries.find(self);
    if (it == row->dest_queries.end() || it->second.empty()) return;
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
    if (self == kBaseStationId) {
      BsAccept(msg);
      return;
    }
    // Keep only the (row, query) pairs this node is responsible for,
    // dropping (query, epoch, source) keys already relayed once.
    std::vector<RowEntry> mine;
    for (const RowEntry& entry : row->entries) {
      RowEntry kept;
      kept.row = entry.row;
      for (QueryId q : entry.queries) {
        if (std::find(it->second.begin(), it->second.end(), q) ==
            it->second.end()) {
          continue;
        }
        if (options_.duplicate_suppression &&
            !state.seen_rows
                 .emplace(q, row->epoch_time, entry.row.node())
                 .second) {
          ++duplicates_suppressed_;
          continue;
        }
        kept.queries.push_back(q);
      }
      if (!kept.queries.empty()) mine.push_back(std::move(kept));
    }
    if (mine.empty()) return;
    state.last_relay = network_.sim().Now();
    const SimTime t = row->epoch_time;
    if (options_.shared_messages && state.slot_scheduled.contains(t) &&
        !state.slot_done.contains(t)) {
      // Our packing slot has not fired yet: the relayed rows ride along
      // with our own reading in one message.
      auto& buffer = state.row_buffer[t];
      buffer.insert(buffer.end(), std::make_move_iterator(mine.begin()),
                    std::make_move_iterator(mine.end()));
    } else {
      SendRows(self, t, std::move(mine));
    }
    return;
  }

  if (const auto* agg =
          dynamic_cast<const SharedAggPayload*>(msg.payload.get())) {
    // Any carrier of partials for q is a good parent for q: forwarding to
    // it lets the aggregates merge one hop earlier.
    NoteHasData(self, msg.sender, AllQueriesOf(agg->dest_queries),
                agg->epoch_time);
    if (!addressed) return;
    const auto it = agg->dest_queries.find(self);
    if (it == agg->dest_queries.end() || it->second.empty()) return;
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
    if (self == kBaseStationId) {
      BsAccept(msg);
      return;
    }
    state.last_relay = network_.sim().Now();
    const SimTime t = agg->epoch_time;
    std::map<QueryId, std::vector<PartialAggregate>> mine;
    for (QueryId q : it->second) {
      const auto part_it = agg->partials.find(q);
      Check(part_it != agg->partials.end(),
            "shared agg payload lacks partials for an addressed query");
      mine.emplace(q, part_it->second);
    }
    if (state.slot_scheduled.contains(t) && !state.slot_done.contains(t)) {
      // Our own shared slot for this tick has not fired: merge and ride
      // along (the in-network aggregation saving).
      auto& buffer = state.agg_buffer[t];
      for (auto& [q, partials] : mine) {
        auto [buf_it, inserted] = buffer.try_emplace(q, partials);
        if (!inserted) MergePartialVectors(buf_it->second, partials);
      }
    } else {
      SendAgg(self, t, std::move(mine));
    }
    return;
  }

  if (const auto* req =
          dynamic_cast<const RepairRequestPayload*>(msg.payload.get())) {
    if (!addressed || self == kBaseStationId) return;
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
    HandleRepairRequest(self, *req);
    return;
  }

  if (const auto* reply =
          dynamic_cast<const RepairReplyPayload*>(msg.payload.get())) {
    if (!addressed) return;
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
    HandleRepairReply(self, msg, *reply);
    return;
  }
}

// -----------------------------------------------------------------------
// Query install / remove and the shared tick
// -----------------------------------------------------------------------

bool InNetworkEngine::ShouldInstall(NodeId self, const Query& query) const {
  if (!options_.use_semantic_routing) return true;
  // Value-based predicates cannot exclude a node in advance; constraints
  // on the constant attributes (nodeid, position) can.
  return NodeMayMatch(self, network_.topology().PositionOf(self),
                      query.predicates());
}

bool InNetworkEngine::ShouldForwardPropagation(NodeId self,
                                               const Query& query) const {
  if (!options_.use_semantic_routing) return true;
  if (!SemanticRoutingTree::IsPrunable(query.predicates())) return true;
  for (NodeId child : tree_.ChildrenOf(self)) {
    if (srt_.SubtreeMayMatch(child, query.predicates())) return true;
  }
  return false;
}

void InNetworkEngine::InstallQuery(NodeId self, const Query& query) {
  nodes_[self].active.emplace(query.id(), query);
  ScheduleTick(self);
}

void InNetworkEngine::RemoveQuery(NodeId self, QueryId id) {
  NodeState& state = nodes_[self];
  state.active.erase(id);
  for (auto& [t, per_query] : state.agg_buffer) per_query.erase(id);
  ScheduleTick(self);
}

void InNetworkEngine::ScheduleTick(NodeId self) {
  NodeState& state = nodes_[self];
  if (state.active.empty()) {
    state.tick_scheduled_for = -1;
    return;
  }
  const SimTime now = network_.sim().Now();
  SimTime next = std::numeric_limits<SimTime>::max();
  for (const auto& [id, query] : state.active) {
    next = std::min(next, AlignUp(now + 1, query.epoch()));
  }
  if (state.tick_scheduled_for == next) return;
  state.tick_scheduled_for = next;
  network_.sim().ScheduleAt(next,
                            [this, self, next]() { OnTick(self, next); });
}

void InNetworkEngine::OnTick(NodeId self, SimTime t) {
  NodeState& state = nodes_[self];
  if (network_.IsFailed(self)) return;  // crashed: the tick chain ends
  if (state.tick_scheduled_for != t) return;  // stale event
  if (network_.IsDown(self)) {
    // Transient outage: skip this tick but keep the chain alive so the
    // node resumes sampling as soon as it recovers.
    ScheduleTick(self);
    return;
  }
  if (network_.IsAsleep(self)) network_.SetAsleep(self, false);

  // Sharing over time: all queries firing at t use one sample acquisition.
  std::vector<const Query*> triggered;
  std::vector<Attribute> attrs;
  for (const auto& [id, query] : state.active) {
    if (t % query.epoch() != 0) continue;
    triggered.push_back(&query);
    const auto acquired = query.AcquiredAttributes();
    attrs.insert(attrs.end(), acquired.begin(), acquired.end());
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());

  bool any_match = false;
  if (!triggered.empty()) {
    const Reading sample = field_.SampleReading(
        self, network_.topology().PositionOf(self), attrs, t);

    std::vector<QueryId> matched_acq;
    std::vector<Attribute> row_attrs;
    for (const Query* query : triggered) {
      const bool match = query->predicates().Matches(sample);
      if (query->kind() == QueryKind::kAggregation) {
        if (match) {
          any_match = true;
          std::vector<PartialAggregate> own;
          own.reserve(query->aggregates().size());
          for (const AggregateSpec& spec : query->aggregates()) {
            own.push_back(PartialAggregate::OfValue(
                spec, sample.GetOrThrow(spec.attribute)));
          }
          auto& buffer = state.agg_buffer[t];
          auto [it, inserted] = buffer.try_emplace(query->id(), std::move(own));
          if (!inserted) MergePartialVectors(it->second, own);
        }
      } else if (match) {
        any_match = true;
        matched_acq.push_back(query->id());
        row_attrs.insert(row_attrs.end(), query->attributes().begin(),
                         query->attributes().end());
      }
    }

    // One shared transmission slot per tick, staggered bottom-up so that
    // children's rows and partials arrive before parents transmit and ride
    // along in the parents' packed messages.
    if (!state.slot_scheduled.contains(t)) {
      state.slot_scheduled.insert(t);
      network_.sim().ScheduleAt(t + SlotOffset(self),
                                [this, self, t]() { OnSlot(self, t); });
    }

    if (!matched_acq.empty()) {
      std::sort(row_attrs.begin(), row_attrs.end());
      row_attrs.erase(std::unique(row_attrs.begin(), row_attrs.end()),
                      row_attrs.end());
      RowEntry own;
      own.row = Reading(self, t);
      for (Attribute attr : row_attrs) {
        own.row.Set(attr, sample.GetOrThrow(attr));
      }
      own.queries = matched_acq;
      // Cache the matched reading so a gap-repair request for this tick
      // can be answered from memory after the original send was lost.
      if (arq_) state.own_rows[t] = own;
      if (options_.shared_messages) {
        state.row_buffer[t].push_back(std::move(own));
      } else {
        // Ablation: no packing — one immediate message per query.
        network_.sim().ScheduleAfter(
            SourceJitter(self), [this, self, t, own]() {
              if (nodes_[self].active.empty()) return;
              if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
              for (QueryId q : own.queries) {
                RowEntry single;
                single.row = own.row;
                single.queries = {q};
                SendRows(self, t, {std::move(single)});
              }
            });
      }
    }
  }
  state.matched_last_tick = any_match;

  // Prune stale per-tick bookkeeping.
  const SimTime horizon = t - kPruneHorizonMs;
  std::erase_if(state.slot_scheduled,
                [horizon](SimTime s) { return s < horizon; });
  std::erase_if(state.slot_done, [horizon](SimTime s) { return s < horizon; });
  std::erase_if(state.agg_buffer,
                [horizon](const auto& e) { return e.first < horizon; });
  std::erase_if(state.row_buffer,
                [horizon](const auto& e) { return e.first < horizon; });
  std::erase_if(state.seen_rows, [horizon](const auto& key) {
    return std::get<1>(key) < horizon;
  });
  std::erase_if(state.own_rows,
                [horizon](const auto& e) { return e.first < horizon; });

  ScheduleTick(self);

  // Decide about sleeping once this tick's forwarding duties are over.
  if (options_.enable_sleep) {
    const SimDuration idle_check =
        SlotOffset(self) + options_.agg_slot_ms + options_.source_jitter_ms;
    network_.sim().ScheduleAt(t + idle_check,
                              [this, self, t]() { MaybeSleep(self, t); });
  }
}

void InNetworkEngine::OnSlot(NodeId self, SimTime t) {
  NodeState& state = nodes_[self];
  if (network_.IsDown(self)) return;  // crashed or in an outage
  if (state.slot_done.contains(t)) return;
  state.slot_done.insert(t);

  // Packed rows (own reading plus everything relayed before the slot).
  const auto row_it = state.row_buffer.find(t);
  if (row_it != state.row_buffer.end()) {
    std::vector<RowEntry> rows = std::move(row_it->second);
    state.row_buffer.erase(row_it);
    if (!rows.empty()) {
      if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
      SendRows(self, t, std::move(rows));
    }
  }

  // Merged partial aggregates.
  const auto it = state.agg_buffer.find(t);
  if (it == state.agg_buffer.end()) return;
  std::map<QueryId, std::vector<PartialAggregate>> partials =
      std::move(it->second);
  state.agg_buffer.erase(it);
  std::erase_if(partials, [](const auto& entry) {
    return entry.second.empty() || entry.second.front().count() == 0;
  });
  if (partials.empty()) return;
  if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
  if (options_.shared_messages) {
    SendAgg(self, t, std::move(partials));
  } else {
    for (auto& [q, p] : partials) {
      std::map<QueryId, std::vector<PartialAggregate>> single;
      single.emplace(q, std::move(p));
      SendAgg(self, t, std::move(single));
    }
  }
}

// -----------------------------------------------------------------------
// Route selection and transmission
// -----------------------------------------------------------------------

std::map<NodeId, std::vector<QueryId>> InNetworkEngine::ChooseParents(
    NodeId self, std::vector<QueryId> queries) {
  std::map<NodeId, std::vector<QueryId>> groups;
  if (!options_.query_aware_routing) {
    groups.emplace(tree_.ParentOf(self), std::move(queries));
    return groups;
  }
  const NodeState& state = nodes_[self];
  // Beacon-based failure detection plus liveness: dead neighbors are never
  // candidates, and neighbors silent past the liveness timeout are
  // blacklisted with bounded backoff.  When every upper-level neighbor is
  // suspect, fall back to the merely-not-failed set; when all are dead the
  // node is cut off — fall back to the full list (the messages will be
  // lost, which is the truth).
  std::vector<NodeId> upper;
  for (NodeId candidate : levels_.UpperNeighbors(self)) {
    if (!network_.IsFailed(candidate) && !SuspectParent(self, candidate) &&
        !(arq_ && candidate != kBaseStationId &&
          arq_->IsQuarantined(self, candidate))) {
      upper.push_back(candidate);
    }
  }
  if (upper.empty()) {
    for (NodeId candidate : levels_.UpperNeighbors(self)) {
      if (!network_.IsFailed(candidate)) upper.push_back(candidate);
    }
  }
  if (upper.empty()) upper = levels_.UpperNeighbors(self);
  Check(!upper.empty(), "every non-root node has an upper-level neighbor");
  const SimTime now = network_.sim().Now();

  auto is_fresh = [&](NodeId neighbor, QueryId q) {
    const auto nb_it = state.has_data.find(neighbor);
    if (nb_it == state.has_data.end()) return false;
    const auto q_it = nb_it->second.find(q);
    if (q_it == nb_it->second.end()) return false;
    const auto active_it = state.active.find(q);
    if (active_it == state.active.end()) return false;
    const SimDuration ttl = static_cast<SimDuration>(
                                options_.has_data_ttl_epochs) *
                            active_it->second.epoch();
    return q_it->second + ttl >= now;
  };

  std::vector<QueryId> remaining = std::move(queries);
  while (!remaining.empty()) {
    NodeId best = upper.front();
    std::vector<QueryId> best_covered;
    double best_quality = -1.0;
    for (NodeId candidate : upper) {
      std::vector<QueryId> covered;
      for (QueryId q : remaining) {
        if (is_fresh(candidate, q)) covered.push_back(q);
      }
      const double quality = network_.link_quality().Quality(self, candidate);
      if (covered.size() > best_covered.size() ||
          (covered.size() == best_covered.size() &&
           quality > best_quality)) {
        best = candidate;
        best_covered = std::move(covered);
        best_quality = quality;
      }
    }
    if (best_covered.empty()) {
      // Nobody advertises data for the rest: give it to the most stable
      // link (this degenerates to TinyDB's choice on a cold start).
      auto& bucket = groups[best];
      bucket.insert(bucket.end(), remaining.begin(), remaining.end());
      break;
    }
    auto& bucket = groups[best];
    bucket.insert(bucket.end(), best_covered.begin(), best_covered.end());
    std::erase_if(remaining, [&](QueryId q) {
      return std::find(best_covered.begin(), best_covered.end(), q) !=
             best_covered.end();
    });
  }
  for (auto& [parent, qs] : groups) std::sort(qs.begin(), qs.end());
  return groups;
}

void InNetworkEngine::SendRows(NodeId self, SimTime t,
                               std::vector<RowEntry> entries) {
  // Rows whose queries route to the same next-hop split pack into one
  // transmission; distinct splits become distinct messages.
  std::map<std::map<NodeId, std::vector<QueryId>>, std::vector<RowEntry>>
      groups;
  for (RowEntry& entry : entries) {
    groups[ChooseParents(self, entry.queries)].push_back(std::move(entry));
  }
  for (auto& [dest_queries, rows] : groups) {
    auto payload = std::make_shared<SharedRowPayload>();
    payload->epoch_time = t;
    payload->entries = std::move(rows);
    payload->dest_queries = dest_queries;

    Message msg;
    msg.cls = MessageClass::kResult;
    msg.mode = payload->dest_queries.size() == 1 ? AddressMode::kUnicast
                                                 : AddressMode::kMulticast;
    msg.sender = self;
    for (const auto& [dest, qs] : payload->dest_queries) {
      msg.destinations.push_back(dest);
    }
    msg.payload_bytes = SharedRowBytes(*payload);
    const SimTime deadline = ResultDeadline(self, t, payload->dest_queries);
    msg.payload = std::move(payload);
    ReliableSend(std::move(msg), deadline);
  }
}

void InNetworkEngine::SendAgg(
    NodeId self, SimTime t,
    std::map<QueryId, std::vector<PartialAggregate>> partials) {
  std::vector<QueryId> queries;
  for (const auto& [q, p] : partials) queries.push_back(q);

  auto payload = std::make_shared<SharedAggPayload>();
  payload->epoch_time = t;
  payload->partials = std::move(partials);
  payload->dest_queries = ChooseParents(self, std::move(queries));

  Message msg;
  msg.cls = MessageClass::kResult;
  msg.mode = payload->dest_queries.size() == 1 ? AddressMode::kUnicast
                                               : AddressMode::kMulticast;
  msg.sender = self;
  for (const auto& [dest, qs] : payload->dest_queries) {
    msg.destinations.push_back(dest);
  }
  msg.payload_bytes = SharedAggBytes(*payload);
  const SimTime deadline = ResultDeadline(self, t, payload->dest_queries);
  msg.payload = std::move(payload);
  ReliableSend(std::move(msg), deadline);
}

// -----------------------------------------------------------------------
// Reliability: ARQ routing, give-up re-routes, gap repair
// -----------------------------------------------------------------------

void InNetworkEngine::ReliableSend(Message msg, SimTime deadline) {
  if (arq_) {
    arq_->Send(std::move(msg), deadline, current_reroute_);
  } else {
    network_.Send(std::move(msg));
  }
}

SimTime InNetworkEngine::ResultDeadline(
    NodeId self, SimTime t,
    const std::map<NodeId, std::vector<QueryId>>& dest_queries) const {
  // A result for tick t is useful until the earliest epoch close among the
  // queries it serves.  Relays may carry queries they never installed
  // (SRT-pruned); fall back to the shortest possible epoch for those.
  const NodeState& state = nodes_[self];
  SimDuration min_epoch = std::numeric_limits<SimDuration>::max();
  bool any = false;
  for (const auto& [dest, queries] : dest_queries) {
    for (QueryId q : queries) {
      const auto it = state.active.find(q);
      if (it == state.active.end()) continue;
      min_epoch = std::min(min_epoch, it->second.epoch());
      any = true;
    }
  }
  if (!any) min_epoch = kMinEpochDurationMs;
  return t + min_epoch;
}

void InNetworkEngine::OnArqGiveUp(const ArqTransport::GiveUpInfo& info) {
  if (info.reroutes >= kMaxReroutes) return;
  if (network_.sim().Now() >= info.deadline) return;
  if (network_.IsFailed(info.sender) || network_.IsDown(info.sender)) return;
  if (trace_ != nullptr) {
    EmitTrace(TraceEvent("tier2.arq_reroute")
                  .With("node", static_cast<std::int64_t>(info.sender))
                  .With("attempt",
                        static_cast<std::int64_t>(info.reroutes + 1)));
  }
  current_reroute_ = info.reroutes + 1;
  if (const auto* row =
          dynamic_cast<const SharedRowPayload*>(info.inner.get())) {
    // Keep only the (row, query) pairs whose destination never acked; the
    // quarantine the give-up produced steers ChooseParents elsewhere.
    std::set<QueryId> lost;
    for (NodeId dest : info.unacked) {
      const auto it = row->dest_queries.find(dest);
      if (it == row->dest_queries.end()) continue;
      lost.insert(it->second.begin(), it->second.end());
    }
    std::vector<RowEntry> entries;
    for (const RowEntry& entry : row->entries) {
      RowEntry kept;
      kept.row = entry.row;
      for (QueryId q : entry.queries) {
        if (lost.contains(q)) kept.queries.push_back(q);
      }
      if (!kept.queries.empty()) entries.push_back(std::move(kept));
    }
    if (!entries.empty()) {
      SendRows(info.sender, row->epoch_time, std::move(entries));
    }
  } else if (const auto* agg =
                 dynamic_cast<const SharedAggPayload*>(info.inner.get())) {
    std::set<QueryId> lost;
    for (NodeId dest : info.unacked) {
      const auto it = agg->dest_queries.find(dest);
      if (it == agg->dest_queries.end()) continue;
      lost.insert(it->second.begin(), it->second.end());
    }
    std::map<QueryId, std::vector<PartialAggregate>> partials;
    for (const auto& [q, p] : agg->partials) {
      if (lost.contains(q)) partials.emplace(q, p);
    }
    if (!partials.empty()) {
      SendAgg(info.sender, agg->epoch_time, std::move(partials));
    }
  } else if (dynamic_cast<const RepairReplyPayload*>(info.inner.get()) !=
             nullptr) {
    // The quarantined hop is now avoided by ControlParent; try another.
    ForwardRepairReply(
        info.sender,
        std::static_pointer_cast<const RepairReplyPayload>(info.inner));
  }
  // Repair *requests* are not re-routed: the fixed tree is the only path
  // that reaches a child's subtree, so an unreachable child simply stays
  // unaccounted this epoch — which is what coverage reports.
  current_reroute_ = 0;
}

NodeId InNetworkEngine::NextHopDown(NodeId from, NodeId target) const {
  NodeId hop = target;
  while (hop != kBaseStationId && tree_.ParentOf(hop) != from) {
    hop = tree_.ParentOf(hop);
  }
  return hop;  // kBaseStationId when target is not below `from`
}

NodeId InNetworkEngine::ControlParent(NodeId self) {
  // Control traffic climbs the fixed tree unless the tree parent is dead
  // or quarantined; then the least-suspect upper-level neighbor takes over.
  const NodeId tree_parent = tree_.ParentOf(self);
  auto usable = [&](NodeId candidate) {
    return !network_.IsFailed(candidate) && !SuspectParent(self, candidate) &&
           !(arq_ && candidate != kBaseStationId &&
             arq_->IsQuarantined(self, candidate));
  };
  if (usable(tree_parent)) return tree_parent;
  NodeId best = tree_parent;
  double best_quality = -1.0;
  for (NodeId candidate : levels_.UpperNeighbors(self)) {
    if (!usable(candidate)) continue;
    const double quality = network_.link_quality().Quality(self, candidate);
    if (quality > best_quality) {
      best = candidate;
      best_quality = quality;
    }
  }
  return best;
}

void InNetworkEngine::RepairCheck(QueryId id, SimTime epoch_time) {
  const auto it = bs_queries_.find(id);
  if (it == bs_queries_.end() || it->second.terminated || !arq_) return;
  const BsQueryState& state = it->second;
  if (epoch_time <= state.closed_through) return;
  const auto rows_it = state.rows.find(epoch_time);
  const auto nd_it = state.no_data.find(epoch_time);
  // Missing = recent contributors that are silent this epoch.  The learned
  // expectation keeps the NACK fan-out proportional to actual losses; a
  // node whose reading drifted out of the predicate range answers one
  // "no data" and ages out of the set after kRepairHistoryEpochs.
  const SimTime horizon =
      epoch_time - kRepairHistoryEpochs * state.query.epoch();
  std::vector<NodeId> missing;
  for (const auto& [node, last] : state.last_contributed) {
    if (last < horizon) continue;
    if (network_.IsFailed(node)) continue;
    if (rows_it != state.rows.end() && rows_it->second.contains(node)) {
      continue;
    }
    if (nd_it != state.no_data.end() && nd_it->second.contains(node)) {
      continue;
    }
    missing.push_back(node);
  }
  if (missing.empty()) return;
  if (trace_ != nullptr) {
    EmitTrace(TraceEvent("tier2.repair_check")
                  .With("query", static_cast<std::int64_t>(id))
                  .With("epoch_t", epoch_time)
                  .With("missing",
                        static_cast<std::int64_t>(missing.size())));
  }
  // NACK down the fixed tree, one request per first-hop subtree.
  std::map<NodeId, std::vector<NodeId>> by_child;
  for (NodeId node : missing) {
    const NodeId child = NextHopDown(kBaseStationId, node);
    if (child == kBaseStationId) continue;
    by_child[child].push_back(node);
  }
  const SimTime deadline = epoch_time + state.query.epoch();
  for (auto& [child, targets] : by_child) {
    if (network_.IsFailed(child)) continue;
    SendRepairRequest(kBaseStationId, child, id, epoch_time, deadline,
                      std::move(targets));
  }
}

void InNetworkEngine::SendRepairRequest(NodeId from, NodeId to, QueryId id,
                                        SimTime epoch_time, SimTime deadline,
                                        std::vector<NodeId> targets) {
  ++repair_requests_;
  auto payload = std::make_shared<RepairRequestPayload>();
  payload->query = id;
  payload->epoch_time = epoch_time;
  payload->deadline = deadline;
  payload->targets = std::move(targets);

  Message msg;
  msg.cls = MessageClass::kControl;
  msg.mode = AddressMode::kUnicast;
  msg.sender = from;
  msg.destinations.push_back(to);
  msg.payload_bytes = RepairRequestBytes(*payload);
  msg.payload = std::move(payload);
  if (network_.IsAsleep(from)) network_.SetAsleep(from, false);
  ReliableSend(std::move(msg), deadline);
}

void InNetworkEngine::HandleRepairRequest(NodeId self,
                                          const RepairRequestPayload& req) {
  if (network_.sim().Now() >= req.deadline) return;  // epoch already closed
  std::vector<NodeId> rest;
  bool mine = false;
  for (NodeId target : req.targets) {
    if (target == self) {
      mine = true;
    } else {
      rest.push_back(target);
    }
  }
  if (mine) SendRepairReply(self, req.query, req.epoch_time, req.deadline);
  if (rest.empty()) return;
  // Pass the remaining targets further down, grouped by own tree child.
  std::map<NodeId, std::vector<NodeId>> by_child;
  for (NodeId target : rest) {
    const NodeId child = NextHopDown(self, target);
    if (child == kBaseStationId) continue;  // not below us: mis-routed, drop
    by_child[child].push_back(target);
  }
  for (auto& [child, targets] : by_child) {
    if (network_.IsFailed(child)) continue;
    SendRepairRequest(self, child, req.query, req.epoch_time, req.deadline,
                      std::move(targets));
  }
}

void InNetworkEngine::SendRepairReply(NodeId self, QueryId id,
                                      SimTime epoch_time, SimTime deadline) {
  const NodeState& state = nodes_[self];
  auto payload = std::make_shared<RepairReplyPayload>();
  payload->query = id;
  payload->epoch_time = epoch_time;
  payload->deadline = deadline;
  payload->node = self;
  // "No data" is only meaningful when the node actually knew the query at
  // some point; a node that missed the dissemination cannot vouch for the
  // epoch and stays uncovered.
  payload->knows_query = state.active.contains(id) ||
                         state.seen_abort.contains(id) ||
                         state.prop_round.contains(id);
  const auto row_it = state.own_rows.find(epoch_time);
  if (row_it != state.own_rows.end() &&
      std::find(row_it->second.queries.begin(), row_it->second.queries.end(),
                id) != row_it->second.queries.end()) {
    payload->has_row = true;
    payload->row = row_it->second.row;
  }
  ForwardRepairReply(self, std::move(payload));
}

void InNetworkEngine::ForwardRepairReply(
    NodeId self, std::shared_ptr<const RepairReplyPayload> reply) {
  if (network_.sim().Now() >= reply->deadline) return;
  Message msg;
  msg.cls = MessageClass::kControl;
  msg.mode = AddressMode::kUnicast;
  msg.sender = self;
  msg.destinations.push_back(ControlParent(self));
  msg.payload_bytes = RepairReplyBytes(*reply);
  const SimTime deadline = reply->deadline;
  msg.payload = std::move(reply);
  if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
  ReliableSend(std::move(msg), deadline);
}

void InNetworkEngine::HandleRepairReply(NodeId self, const Message& msg,
                                        const RepairReplyPayload& reply) {
  if (self != kBaseStationId) {
    // Relay one hop further up; reuse the payload we already hold.
    ForwardRepairReply(
        self, std::static_pointer_cast<const RepairReplyPayload>(msg.payload));
    return;
  }
  auto it = bs_queries_.find(reply.query);
  if (it == bs_queries_.end() || it->second.terminated) return;
  BsQueryState& state = it->second;
  if (reply.epoch_time <= state.closed_through) {
    ++late_drops_;
    return;
  }
  ++repair_replies_;
  if (reply.has_row) {
    if (!state.rows[reply.epoch_time]
             .try_emplace(reply.node, reply.row)
             .second) {
      ++duplicates_suppressed_;
    }
    SimTime& last = state.last_contributed[reply.node];
    last = std::max(last, reply.epoch_time);
  } else if (reply.knows_query) {
    state.no_data[reply.epoch_time].insert(reply.node);
  }
}

void InNetworkEngine::NoteAlive(NodeId self, NodeId sender) {
  NodeState& state = nodes_[self];
  SimTime& last = state.last_heard[sender];
  last = std::max(last, network_.sim().Now());
  state.suspicion.erase(sender);  // fresh traffic resets the backoff
}

bool InNetworkEngine::SuspectParent(NodeId self, NodeId candidate) {
  NodeState& state = nodes_[self];
  const SimTime now = network_.sim().Now();
  // An existing blacklist entry applies even without liveness tracking:
  // the ARQ quarantine hook writes here too.
  const auto susp_it = state.suspicion.find(candidate);
  if (susp_it != state.suspicion.end() &&
      now < susp_it->second.blacklisted_until) {
    return true;
  }
  if (options_.liveness_timeout_ms <= 0) return false;
  const auto heard_it = state.last_heard.find(candidate);
  const SimTime last = heard_it != state.last_heard.end() ? heard_it->second
                                                          : 0;
  if (now - last <= options_.liveness_timeout_ms) return false;
  // Silent past the timeout: blacklist with a doubling, bounded backoff.
  Suspicion& suspicion = state.suspicion[candidate];
  suspicion.backoff =
      suspicion.backoff == 0
          ? options_.blacklist_base_backoff_ms
          : std::min(suspicion.backoff * 2, options_.blacklist_max_backoff_ms);
  suspicion.blacklisted_until = now + suspicion.backoff;
  // Optimistic probe: pretend the candidate was heard at expiry so it gets
  // one fresh chance before the next (doubled) blacklist — bounded
  // re-selection after recovery.
  SimTime& heard = state.last_heard[candidate];
  heard = std::max(heard, suspicion.blacklisted_until);
  if (trace_ != nullptr) {
    EmitTrace(TraceEvent("tier2.parent_blacklist")
                  .With("node", static_cast<std::int64_t>(self))
                  .With("parent", static_cast<std::int64_t>(candidate))
                  .With("until", suspicion.blacklisted_until));
  }
  return true;
}

void InNetworkEngine::NoteHasData(NodeId self, NodeId sender,
                                  const std::vector<QueryId>& queries,
                                  SimTime when) {
  // Only upper-level neighbors are parent candidates.
  if (levels_.LevelOf(sender) + 1 != levels_.LevelOf(self)) return;
  auto& per_neighbor = nodes_[self].has_data[sender];
  for (QueryId q : queries) {
    SimTime& last = per_neighbor[q];
    last = std::max(last, when);
  }
}

void InNetworkEngine::MaybeSleep(NodeId self, SimTime t) {
  NodeState& state = nodes_[self];
  if (state.matched_last_tick) return;
  if (state.last_relay >= t) return;  // relayed during this tick
  if (state.tick_scheduled_for <= network_.sim().Now()) return;
  const SimTime wake_at = state.tick_scheduled_for - options_.sleep_guard_ms;
  if (wake_at <= network_.sim().Now()) return;
  network_.SetAsleep(self, true);
  network_.sim().ScheduleAt(wake_at, [this, self]() {
    if (network_.IsAsleep(self)) network_.SetAsleep(self, false);
  });
}

// -----------------------------------------------------------------------
// Base-station side
// -----------------------------------------------------------------------

void InNetworkEngine::BsAccept(const Message& msg) {
  if (const auto* row =
          dynamic_cast<const SharedRowPayload*>(msg.payload.get())) {
    const auto it = row->dest_queries.find(kBaseStationId);
    if (it == row->dest_queries.end()) return;
    for (const RowEntry& entry : row->entries) {
      for (QueryId q : entry.queries) {
        if (std::find(it->second.begin(), it->second.end(), q) ==
            it->second.end()) {
          continue;  // another destination is responsible for this query
        }
        auto bs_it = bs_queries_.find(q);
        if (bs_it == bs_queries_.end() || bs_it->second.terminated) continue;
        // Epochs at or before the watermark are closed: the answer left
        // the station already, so the row is dropped instead of leaking
        // into the per-epoch map forever.
        if (row->epoch_time <= bs_it->second.closed_through) {
          ++late_drops_;
          continue;
        }
        // At most one row per (query, epoch, source): duplicate deliveries
        // (e.g. a relay re-sending after an ambiguous loss) are dropped.
        if (!bs_it->second.rows[row->epoch_time]
                 .try_emplace(entry.row.node(), entry.row)
                 .second) {
          ++duplicates_suppressed_;
        }
        if (arq_) {
          SimTime& last =
              bs_it->second.last_contributed[entry.row.node()];
          last = std::max(last, row->epoch_time);
        }
      }
    }
    return;
  }
  if (const auto* agg =
          dynamic_cast<const SharedAggPayload*>(msg.payload.get())) {
    const auto it = agg->dest_queries.find(kBaseStationId);
    if (it == agg->dest_queries.end()) return;
    for (QueryId q : it->second) {
      auto bs_it = bs_queries_.find(q);
      if (bs_it == bs_queries_.end() || bs_it->second.terminated) continue;
      if (agg->epoch_time <= bs_it->second.closed_through) {
        ++late_drops_;
        continue;
      }
      const auto part_it = agg->partials.find(q);
      if (part_it == agg->partials.end()) continue;
      auto& buffer = bs_it->second.partials[agg->epoch_time];
      if (buffer.empty()) {
        buffer = part_it->second;
      } else {
        MergePartialVectors(buffer, part_it->second);
      }
    }
  }
}

void InNetworkEngine::ScheduleEpochClose(QueryId id, SimTime epoch_time) {
  const auto it = bs_queries_.find(id);
  if (it == bs_queries_.end() || it->second.terminated) return;
  network_.sim().ScheduleAt(
      epoch_time + it->second.query.epoch(),
      [this, id, epoch_time]() { CloseEpoch(id, epoch_time); });
  // Gap repair (arq profile, acquisition only): halfway through the epoch
  // the regular deliveries are in; NACK whoever is still unaccounted while
  // there is time for a repair round trip before the close.  Aggregation
  // queries get no repair — re-injecting a partial into the in-network
  // merge could double-count — only coverage annotation.
  if (arq_ && it->second.query.kind() == QueryKind::kAcquisition) {
    network_.sim().ScheduleAt(
        epoch_time + it->second.query.epoch() / 2,
        [this, id, epoch_time]() { RepairCheck(id, epoch_time); });
  }
}

void InNetworkEngine::CloseEpoch(QueryId id, SimTime epoch_time) {
  auto it = bs_queries_.find(id);
  if (it == bs_queries_.end() || it->second.terminated) return;
  BsQueryState& state = it->second;

  EpochResult result;
  result.query = id;
  result.epoch_time = epoch_time;
  result.kind = state.query.kind();
  int contributing = 0;
  if (state.query.kind() == QueryKind::kAcquisition) {
    auto rows_it = state.rows.find(epoch_time);
    if (rows_it != state.rows.end()) {
      // Shared rows carry the union projection; narrow to this query's
      // attribute list so the answer matches the baseline's exactly.  The
      // per-epoch map is keyed by source node, so rows come out already
      // deduplicated and in node order.
      for (const auto& [node, row] : rows_it->second) {
        Reading projected(row.node(), row.time());
        for (Attribute attr : state.query.attributes()) {
          projected.Set(attr, row.GetOrThrow(attr));
        }
        result.rows.push_back(std::move(projected));
      }
    }
    contributing = static_cast<int>(result.rows.size());
  } else {
    std::vector<PartialAggregate> merged;
    auto agg_it = state.partials.find(epoch_time);
    if (agg_it != state.partials.end()) merged = std::move(agg_it->second);
    if (!merged.empty()) contributing = static_cast<int>(merged.front().count());
    for (std::size_t i = 0; i < state.query.aggregates().size(); ++i) {
      const AggregateSpec& spec = state.query.aggregates()[i];
      if (i < merged.size()) {
        result.aggregates.emplace_back(spec, merged[i].Finalize());
      } else {
        result.aggregates.emplace_back(spec,
                                       PartialAggregate(spec).Finalize());
      }
    }
  }
  if (arq_) {
    // Coverage: how much of the *learned* expected contributor set is
    // accounted for — by data or by a repair-affirmed "no data".  The
    // expectation is the recent-contributor history (the SRT install set
    // overestimates wildly under selective predicates), so the very first
    // epoch reports full coverage and losses show up from the second on.
    const SimTime horizon =
        epoch_time - kRepairHistoryEpochs * state.query.epoch();
    result.contributing_nodes = contributing;
    if (state.query.kind() == QueryKind::kAcquisition) {
      int expected_alive = 0;
      for (const auto& [node, last] : state.last_contributed) {
        if (last >= horizon && !network_.IsFailed(node)) ++expected_alive;
      }
      int accounted = contributing;
      const auto nd_it = state.no_data.find(epoch_time);
      if (nd_it != state.no_data.end()) {
        accounted += static_cast<int>(nd_it->second.size());
      }
      result.coverage =
          expected_alive == 0
              ? 1.0
              : std::min(1.0, static_cast<double>(accounted) /
                                  static_cast<double>(expected_alive));
      // Age out nodes whose last row fell off the horizon so the ledger
      // tracks the active contributor set, not all-time history.
      std::erase_if(state.last_contributed,
                    [horizon](const auto& e) { return e.second < horizon; });
    } else {
      // Aggregation has no per-node rows; the expectation is the largest
      // recent contributor count (aggregates get no gap repair — merging
      // a repaired partial could double-count — only the annotation).
      std::int64_t expected = contributing;
      for (const auto& [t, count] : state.agg_counts) {
        if (t >= horizon) expected = std::max(expected, count);
      }
      result.coverage =
          expected == 0
              ? 1.0
              : std::min(1.0, static_cast<double>(contributing) /
                                  static_cast<double>(expected));
      state.agg_counts[epoch_time] = contributing;
      state.agg_counts.erase(state.agg_counts.begin(),
                             state.agg_counts.lower_bound(horizon));
    }
  }
  // Advance the watermark and drop everything at or before it: closed
  // epochs can never reach the user again, so the per-epoch ledgers stay
  // bounded even when stragglers keep trickling in.
  state.closed_through = std::max(state.closed_through, epoch_time);
  state.rows.erase(state.rows.begin(), state.rows.upper_bound(epoch_time));
  state.partials.erase(state.partials.begin(),
                       state.partials.upper_bound(epoch_time));
  state.no_data.erase(state.no_data.begin(),
                      state.no_data.upper_bound(epoch_time));
  if (trace_ != nullptr) {
    EmitTrace(TraceEvent("tier2.epoch_close")
                  .With("query", static_cast<std::int64_t>(id))
                  .With("epoch_t", epoch_time)
                  .With("rows", static_cast<std::int64_t>(result.rows.size()))
                  .With("aggregates",
                        static_cast<std::int64_t>(result.aggregates.size())));
  }
  if (sink_ != nullptr) sink_->OnResult(result);
  ScheduleEpochClose(id, epoch_time + state.query.epoch());
}

}  // namespace ttmqo
