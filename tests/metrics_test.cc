// Tests for run summaries and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/run_summary.h"
#include "metrics/table.h"

namespace ttmqo {
namespace {

TEST(RunSummaryTest, SnapshotsTheLedger) {
  RadioLedger ledger(4);
  ledger.ChargeTransmit(1, MessageClass::kResult, 100.0, false);
  ledger.ChargeTransmit(2, MessageClass::kQueryPropagation, 50.0, false);
  ledger.ChargeTransmit(2, MessageClass::kResult, 10.0, true);
  ledger.ChargeTransmit(3, MessageClass::kMaintenance, 5.0, false);
  ledger.AddSleep(3, 500.0);

  const RunSummary s = RunSummary::FromLedger(ledger, 1000);
  EXPECT_EQ(s.result_messages, 1u);
  EXPECT_EQ(s.propagation_messages, 1u);
  EXPECT_EQ(s.maintenance_messages, 1u);
  EXPECT_EQ(s.retransmissions, 1u);
  EXPECT_EQ(s.total_messages, 3u);
  EXPECT_DOUBLE_EQ(s.total_transmit_ms, 165.0);
  // Sensors 1..3 transmit (100 + 60 + 5) ms over 1000 ms.
  EXPECT_NEAR(s.avg_transmission_fraction, (0.1 + 0.06 + 0.005) / 3, 1e-12);
  EXPECT_NEAR(s.avg_sleep_fraction, 0.5 / 3, 1e-12);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(SavingsPercentTest, Basics) {
  EXPECT_DOUBLE_EQ(SavingsPercent(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(SavingsPercent(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(SavingsPercent(10.0, 12.0), -20.0);
  EXPECT_DOUBLE_EQ(SavingsPercent(0.0, 5.0), 0.0);  // undefined -> 0
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "23.5"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TablePrinterTest, RejectsRaggedRows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(3.0, 0), "3");
}

}  // namespace
}  // namespace ttmqo
