// White-box-ish tests of tier-2 message packing on a deterministic line
// topology: BS — A — B — C (40 ft apart, 50 ft range), where exact message
// counts can be computed by hand.
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "query/parser.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

// Nodes 2 (B) and 3 (C) hold data; 1 (A) is a pure relay.
class LineField final : public FieldModel {
 public:
  double Sample(NodeId node, const Position&, Attribute attr,
                SimTime time) const override {
    if (attr == Attribute::kNodeId) return node;
    const double base = node >= 2 ? 900.0 : 100.0;
    return base + static_cast<double>((node + time / 2048) % 7);
  }
};

class LinePackingTest : public ::testing::Test {
 protected:
  LinePackingTest()
      : topology_({{0, 0}, {40, 0}, {80, 0}, {120, 0}}, 50.0),
        network_(topology_, RadioParams{}, ChannelParams{}, 1) {}

  Topology topology_;
  Network network_;
  LineField field_;
  ResultLog log_;
};

TEST_F(LinePackingTest, LineTopologyIsAChain) {
  EXPECT_EQ(topology_.NeighborsOf(0), std::vector<NodeId>{1});
  EXPECT_EQ(topology_.NeighborsOf(1), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(topology_.NeighborsOf(3), std::vector<NodeId>{2});
  EXPECT_EQ(topology_.MaxDepth(), 3u);
}

TEST_F(LinePackingTest, RelaysPackRowsIntoOneMessagePerHop) {
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q);
  network_.sim().RunUntil(2 * 4096);  // first epoch closes at 8192

  // Hand count: C sends its row to B (1); B packs C's row with its own and
  // sends one message to A (1); A relays the batch to the BS (1) = 3.
  EXPECT_EQ(network_.ledger().TotalSent(MessageClass::kResult), 3u);
  // Both rows arrived.
  const EpochResult* r = log_.Find(1, 4096);
  ASSERT_NE(r, nullptr);
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].node(), 2);
  EXPECT_EQ(r->rows[1].node(), 3);
}

TEST_F(LinePackingTest, BaselineSendsPerRowPerHop) {
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");
  TinyDbEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q);
  network_.sim().RunUntil(2 * 4096);
  // C's row: C->B->A->BS (3 hops); B's row: B->A->BS (2 hops) = 5 messages.
  EXPECT_EQ(network_.ledger().TotalSent(MessageClass::kResult), 5u);
}

TEST_F(LinePackingTest, TwoQueriesShareOneBatch) {
  const Query q1 =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");
  const Query q2 = ParseQuery(
      2, "SELECT light, temp WHERE light > 850 EPOCH DURATION 4096");
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q1);
  engine.SubmitQuery(q2);
  network_.sim().RunUntil(2 * 4096);
  // Same three transmissions serve both queries (rows co-match).
  EXPECT_EQ(network_.ledger().TotalSent(MessageClass::kResult), 3u);
  const EpochResult* r1 = log_.Find(1, 4096);
  const EpochResult* r2 = log_.Find(2, 4096);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r1->rows.size(), 2u);
  EXPECT_EQ(r2->rows.size(), 2u);
}

TEST_F(LinePackingTest, AggregationMergesToOneMessagePerHop) {
  const Query q = ParseQuery(
      1, "SELECT SUM(light) WHERE light > 800 EPOCH DURATION 4096");
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q);
  network_.sim().RunUntil(2 * 4096);
  // C's partial -> B merges -> one message per hop: C->B, B->A, A->BS = 3.
  EXPECT_EQ(network_.ledger().TotalSent(MessageClass::kResult), 3u);
  const EpochResult* r = log_.Find(1, 4096);
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->aggregates[0].second.has_value());
  // SUM over nodes 2 and 3 at t=4096: (900+(2+2)%7) + (900+(3+2)%7).
  EXPECT_DOUBLE_EQ(*r->aggregates[0].second, (900 + 4) + (900 + 5));
}

TEST_F(LinePackingTest, LateRowsAreForwardedNotLost) {
  // Disable packing: rows are forwarded immediately, arriving at the relay
  // after its (empty) slot — the late path must still deliver them.
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096");
  InNetOptions options;
  options.shared_messages = false;
  InNetworkEngine engine(network_, field_, &log_, options);
  engine.SubmitQuery(q);
  network_.sim().RunUntil(3 * 4096);
  const EpochResult* r = log_.Find(1, 2 * 4096);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->rows.size(), 2u);
}

}  // namespace
}  // namespace ttmqo
