file(REMOVE_RECURSE
  "CMakeFiles/fig5_selectivity.dir/fig5_selectivity.cc.o"
  "CMakeFiles/fig5_selectivity.dir/fig5_selectivity.cc.o.d"
  "fig5_selectivity"
  "fig5_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
