file(REMOVE_RECURSE
  "libttmqo_tinydb.a"
)
