// The Figure 2 scenario: two acquisition queries over a spatially
// connected answer set.  The in-network tier must (a) answer both queries
// correctly, (b) transmit each source reading once for both queries, and
// (c) use substantially fewer radio transmissions than TinyDB's
// per-query relaying.
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "query/parser.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

// A field where a fixed set of nodes has elevated light readings: the
// "D, E, F, G, H hold data" setup of Figure 2, made deterministic.
class ClusterField final : public FieldModel {
 public:
  explicit ClusterField(std::set<NodeId> hot) : hot_(std::move(hot)) {}

  double Sample(NodeId node, const Position&, Attribute attr,
                SimTime time) const override {
    if (attr == Attribute::kNodeId) return node;
    // Deterministic, time-varying but stable membership.
    const double base = hot_.contains(node) ? 900.0 : 100.0;
    return base + static_cast<double>((node * 7 + time / 2048) % 50);
  }

 private:
  std::set<NodeId> hot_;
};

class Fig2ScenarioTest : public ::testing::Test {
 protected:
  Fig2ScenarioTest()
      : topology_(Topology::Grid(4)),
        // The far corner region of the grid holds the data.
        field_({10, 11, 14, 15, 13}) {}

  // q_i selects a superset of nodes; q_j a subset — as in Figure 2 where
  // D,E,F,G,H answer q_i and D,G,H answer q_j.
  std::vector<Query> Queries() {
    return {
        ParseQuery(1, "SELECT light WHERE light > 800 EPOCH DURATION 4096"),
        ParseQuery(2, "SELECT light WHERE light > 890 EPOCH DURATION 4096"),
    };
  }

  Topology topology_;
  ClusterField field_;
};

TEST_F(Fig2ScenarioTest, BothQueriesAnsweredCorrectly) {
  Network network(topology_, RadioParams{}, ChannelParams{}, 1);
  ResultLog log;
  InNetworkEngine engine(network, field_, &log);
  const auto queries = Queries();
  for (const Query& q : queries) engine.SubmitQuery(q);
  network.sim().RunUntil(8 * 4096);

  ResultLog oracle;
  for (const Query& q : queries) {
    testing::FillOracle(oracle, q, 8 * 4096, field_, topology_);
  }
  const auto diff = CompareResultLogs(oracle, log, queries);
  EXPECT_FALSE(diff.has_value()) << *diff;
  // Sanity: the cluster actually answers (5 nodes for q1).
  const EpochResult* r1 = log.Find(1, 4096);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->rows.size(), 5u);
}

TEST_F(Fig2ScenarioTest, SharedTransmissionsBeatTinyDb) {
  Network innet_net(topology_, RadioParams{}, ChannelParams{}, 1);
  ResultLog innet_log;
  InNetworkEngine innet(innet_net, field_, &innet_log);
  for (const Query& q : Queries()) innet.SubmitQuery(q);
  innet_net.sim().RunUntil(8 * 4096);
  const auto innet_msgs =
      innet_net.ledger().TotalSent(MessageClass::kResult);

  Network tinydb_net(topology_, RadioParams{}, ChannelParams{}, 1);
  ResultLog tinydb_log;
  TinyDbEngine tinydb(tinydb_net, field_, &tinydb_log);
  for (const Query& q : Queries()) tinydb.SubmitQuery(q);
  tinydb_net.sim().RunUntil(8 * 4096);
  const auto tinydb_msgs =
      tinydb_net.ledger().TotalSent(MessageClass::kResult);

  // Figure 2 counts 12 vs 20 messages (40% fewer); packing across sources
  // and queries should save at least that much here.
  EXPECT_LT(innet_msgs, tinydb_msgs * 6 / 10)
      << "in-network: " << innet_msgs << ", tinydb: " << tinydb_msgs;
}

TEST_F(Fig2ScenarioTest, IdleRegionSleeps) {
  Network network(topology_, RadioParams{}, ChannelParams{}, 1);
  ResultLog log;
  InNetOptions options;
  options.enable_sleep = true;
  InNetworkEngine engine(network, field_, &log, options);
  for (const Query& q : Queries()) engine.SubmitQuery(q);
  network.sim().RunUntil(8 * 4096);
  // Nodes whose data never matches and that relay nothing accumulate sleep
  // time (the "C and A can be instructed to sleep" effect).
  double idle_sleep = 0.0;
  for (int n : {1, 2, 4}) {  // near the BS, far from the cluster
    idle_sleep += network.ledger().StatsOf(static_cast<NodeId>(n)).sleep_ms;
  }
  EXPECT_GT(idle_sleep, 0.0);
}

TEST_F(Fig2ScenarioTest, AggregationMergesEarlyInTheCluster) {
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT MAX(light) WHERE light > 800 EPOCH DURATION "
                    "4096"),
      ParseQuery(2, "SELECT MAX(light) WHERE light > 890 EPOCH DURATION "
                    "4096"),
  };
  Network innet_net(topology_, RadioParams{}, ChannelParams{}, 1);
  ResultLog innet_log;
  InNetworkEngine innet(innet_net, field_, &innet_log);
  for (const Query& q : queries) innet.SubmitQuery(q);
  innet_net.sim().RunUntil(8 * 4096);

  Network tinydb_net(topology_, RadioParams{}, ChannelParams{}, 1);
  ResultLog tinydb_log;
  TinyDbEngine tinydb(tinydb_net, field_, &tinydb_log);
  for (const Query& q : queries) tinydb.SubmitQuery(q);
  tinydb_net.sim().RunUntil(8 * 4096);

  // Correctness in both engines...
  ResultLog oracle;
  for (const Query& q : queries) {
    testing::FillOracle(oracle, q, 8 * 4096, field_, topology_);
  }
  auto diff = CompareResultLogs(oracle, innet_log, queries);
  EXPECT_FALSE(diff.has_value()) << *diff;
  diff = CompareResultLogs(oracle, tinydb_log, queries);
  EXPECT_FALSE(diff.has_value()) << *diff;
  // ...and fewer result transmissions under tier 2 (one shared partial
  // message carries both queries).
  EXPECT_LT(innet_net.ledger().TotalSent(MessageClass::kResult),
            tinydb_net.ledger().TotalSent(MessageClass::kResult));
}

}  // namespace
}  // namespace ttmqo
