# Empty dependencies file for tinydb_test.
# This may be replaced when dependencies are built.
