#include "metrics/csv.h"

namespace ttmqo {

void WriteResultsCsv(const ResultLog& log, std::ostream& out) {
  out << "query,epoch_ms,kind,source,field,value\n";
  for (const EpochResult* result : log.All()) {
    if (result->kind == QueryKind::kAcquisition) {
      for (const Reading& row : result->rows) {
        for (Attribute attr : kAllAttributes) {
          const auto value = row.Get(attr);
          if (!value.has_value() || attr == Attribute::kNodeId) continue;
          out << result->query << ',' << result->epoch_time << ",row,"
              << row.node() << ',' << AttributeName(attr) << ',' << *value
              << '\n';
        }
      }
    } else {
      for (const auto& [spec, value] : result->aggregates) {
        out << result->query << ',' << result->epoch_time << ",agg,,"
            << spec.ToString() << ',';
        if (value.has_value()) out << *value;
        out << '\n';
      }
    }
  }
}

}  // namespace ttmqo
