// Shared (multi-query) radio payloads of the in-network tier.
//
// Tier 2 packs the traffic of several queries into single transmissions
// (Section 3.2.2): one source row answers every acquisition query the
// reading satisfies, and one partial-aggregate message carries the state of
// several aggregation queries (identical partial vectors are serialized
// once).  A multicast message carries a per-destination query split: each
// addressed neighbor forwards only its own subset.
#pragma once

#include <map>
#include <vector>

#include "net/message.h"
#include "query/aggregate.h"
#include "query/query.h"
#include "sensing/reading.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Query propagation with the piggybacked "sender has data" bit the DAG
/// bootstrap relies on (Section 3.2.2, Query Propagation Phase).
struct InNetPropagationPayload final : Payload {
  InNetPropagationPayload(Query q, bool has_data, int r = 0)
      : query(std::move(q)), sender_has_data(has_data), round(r) {}
  Query query;
  /// Whether the forwarding node's current reading satisfies the query.
  bool sender_has_data;
  /// Dissemination round: 0 for the initial flood, k for the k-th retry
  /// re-flood.  Nodes re-forward a query only when the round advances, so
  /// retries reach late-recovering nodes without looping.
  int round;
};

/// One source reading and the acquisition queries it answers.
struct RowEntry {
  /// The source reading, projected to the union of the queries' attributes.
  Reading row;
  /// Queries whose predicates the reading satisfied at the source.
  std::vector<QueryId> queries;
};

/// A packed batch of source rows serving several acquisition queries.
/// Relay nodes buffer rows until their depth-staggered slot and send one
/// message per next-hop group — the "combination of several query
/// transmissions" of Section 1; a node's own reading and the rows it
/// relays ride together.
struct SharedRowPayload final : Payload {
  SimTime epoch_time = 0;
  /// The packed rows.
  std::vector<RowEntry> entries;
  /// Which queries each addressed destination is responsible for.  For a
  /// unicast this has one entry holding every query the batch answers.
  std::map<NodeId, std::vector<QueryId>> dest_queries;
};

/// Partial aggregation state of several queries for one epoch tick.
struct SharedAggPayload final : Payload {
  SimTime epoch_time = 0;
  /// Partial state per query (vector ordered by the query's aggregate list).
  std::map<QueryId, std::vector<PartialAggregate>> partials;
  /// Which queries each addressed destination is responsible for.
  std::map<NodeId, std::vector<QueryId>> dest_queries;
};

/// Base-station NACK: "I am missing the epoch contributions of `targets`
/// for (`query`, `epoch_time`) — report before `deadline`".  Travels down
/// the routing tree hop by hop (each relay keeps its own subtree's targets
/// and forwards the rest), ARQ-protected, as `MessageClass::kControl`.
struct RepairRequestPayload final : Payload {
  QueryId query = kInvalidQueryId;
  SimTime epoch_time = 0;
  /// Epoch close time at the base station; replies past it are pointless.
  SimTime deadline = 0;
  std::vector<NodeId> targets;
};

/// A node's answer to a gap-repair request, forwarded up the routing tree
/// to the base station.  Either re-delivers the cached epoch row or
/// affirms "no data" — both make the node *accounted* in the base
/// station's coverage ledger.
struct RepairReplyPayload final : Payload {
  QueryId query = kInvalidQueryId;
  SimTime epoch_time = 0;
  SimTime deadline = 0;
  NodeId node = 0;
  /// False when the node never heard of the query (missed dissemination):
  /// the base station then leaves it uncovered instead of trusting a
  /// meaningless "no data".
  bool knows_query = false;
  bool has_row = false;
  /// Valid when `has_row`.
  Reading row;
};

/// Serialized size of a gap-repair request.
std::size_t RepairRequestBytes(const RepairRequestPayload& payload);

/// Serialized size of a gap-repair reply.
std::size_t RepairReplyBytes(const RepairReplyPayload& payload);

/// Serialized size of a shared row message.
std::size_t SharedRowBytes(const SharedRowPayload& payload);

/// Serialized size of a shared aggregate message; identical partial vectors
/// are counted once (the paper's "packed" aggregation sharing).
std::size_t SharedAggBytes(const SharedAggPayload& payload);

}  // namespace ttmqo
