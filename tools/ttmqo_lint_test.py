#!/usr/bin/env python3
"""Tests for tools/ttmqo_lint against the fixture tree in
tools/lint_fixtures/.  Stdlib only; wired into ctest under the `unit`
label.  Each rule must fire on its bad fixture, stay quiet on the clean
fixture, and honor both escape hatches (inline annotation, allowlist)."""

import os
import re
import subprocess
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINT = os.path.join(TOOLS_DIR, "ttmqo_lint")
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")
FIXTURE_ALLOW = os.path.join(FIXTURES, "allow")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, check=False,
    )
    return proc.returncode, proc.stdout, proc.stderr


def findings(stdout):
    """Parses `path:line: [rule] ...` lines into (path, line, rule)."""
    out = []
    for line in stdout.splitlines():
        m = re.match(r"(.+?):(\d+): \[([a-z-]+)\]", line)
        if m:
            out.append((m.group(1), int(m.group(2)), m.group(3)))
    return out


class FixtureTest(unittest.TestCase):
    def lint_fixture(self, *paths, allowlist=False):
        args = ["--root", FIXTURES]
        if allowlist:
            args += ["--allowlist-dir", FIXTURE_ALLOW]
        code, stdout, _ = run_lint(*args, *paths)
        return code, findings(stdout)

    def test_wall_clock_rule_fires(self):
        code, found = self.lint_fixture("src/core/wall_clock_bad.cc")
        self.assertEqual(code, 1)
        rules = {r for (_, _, r) in found}
        self.assertEqual(rules, {"wall-clock"})
        # system_clock, steady_clock, high_resolution_clock, time(NULL),
        # rand(), srand(), getenv() — one finding each; none from the
        # comment or the string literal.
        self.assertEqual(len(found), 7)

    def test_unordered_container_rule_fires(self):
        code, found = self.lint_fixture("src/query/unordered_bad.cc")
        self.assertEqual(code, 1)
        rules = {r for (_, _, r) in found}
        self.assertIn("unordered-container", rules)
        unordered = [f for f in found if f[2] == "unordered-container"]
        # The two member declarations (the #include lines carry no std::).
        self.assertEqual(len(unordered), 2)

    def test_raw_alloc_rule_fires_only_in_hot_path(self):
        code, found = self.lint_fixture("src/net/raw_alloc_bad.cc")
        self.assertEqual(code, 1)
        raw = [f for f in found if f[2] == "raw-alloc"]
        # new, malloc, calloc, free x2; placement new and #include exempt.
        self.assertEqual(len(raw), 5)
        # The same content outside a hot-path file must not fire: the
        # wall_clock fixture lives in src/core but is not a hot-path file.
        _, other = self.lint_fixture("src/core/wall_clock_bad.cc")
        self.assertFalse([f for f in other if f[2] == "raw-alloc"])

    def test_throwing_dtor_rule_fires(self):
        code, found = self.lint_fixture("src/core/throwing_dtor_bad.cc")
        self.assertEqual(code, 1)
        dtor = [f for f in found if f[2] == "throwing-dtor"]
        # One throw-in-body, one noexcept(false) declaration.
        self.assertEqual(len(dtor), 2)

    def test_clean_fixture_is_clean(self):
        code, found = self.lint_fixture("src/core/clean.cc")
        self.assertEqual(code, 0)
        self.assertEqual(found, [])

    def test_inline_annotation_suppresses(self):
        code, found = self.lint_fixture("src/core/allow_inline.cc")
        self.assertEqual(code, 0, f"unexpected findings: {found}")

    def test_allowlist_suppresses(self):
        # Without the allowlist the violation fires ...
        code, found = self.lint_fixture("src/sweep/allowlisted.cc")
        self.assertEqual(code, 1)
        self.assertEqual({r for (_, _, r) in found}, {"wall-clock"})
        # ... with it the file is exempt.
        code, found = self.lint_fixture(
            "src/sweep/allowlisted.cc", allowlist=True)
        self.assertEqual(code, 0, f"unexpected findings: {found}")

    def test_whole_fixture_tree_scan(self):
        """Directory walk + allowlist: exactly the un-suppressed findings."""
        code, found = self.lint_fixture(allowlist=True)
        self.assertEqual(code, 1)
        by_rule = {}
        for _, _, rule in found:
            by_rule[rule] = by_rule.get(rule, 0) + 1
        self.assertEqual(by_rule, {
            "wall-clock": 7,
            "unordered-container": 2,
            "raw-alloc": 5,
            "throwing-dtor": 2,
        })

    def test_list_rules(self):
        code, stdout, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ("wall-clock", "unordered-container", "raw-alloc",
                     "throwing-dtor"):
            self.assertIn(rule, stdout)


class RealTreeTest(unittest.TestCase):
    def test_repository_is_lint_clean(self):
        """The gating property: the actual tree has zero findings."""
        code, stdout, stderr = run_lint("--root", REPO_ROOT)
        self.assertEqual(code, 0, f"tree not lint-clean:\n{stdout}{stderr}")


if __name__ == "__main__":
    unittest.main()
