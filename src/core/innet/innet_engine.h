// Tier 2: the in-network optimization engine (Section 3.2).
//
// Runs a set of network queries (user queries in in-network-only mode,
// synthetic queries under the full two-tier scheme) with three cooperating
// optimizations the baseline lacks:
//
//  * Sharing over time (3.2.1): every node's clock fires at the common
//    epoch grid (epoch starts are divisible by the epoch duration), so all
//    queries triggered at a tick share one sample acquisition.
//  * Sharing over space (3.2.2): one source row message answers every
//    acquisition query the reading satisfies; one partial-aggregate message
//    carries all aggregation queries of a tick, identical partial vectors
//    packed once.
//  * Query-aware DAG routing (3.2.2): instead of the fixed link-quality
//    tree, each message dynamically picks parents among the sender's
//    upper-level neighbors, preferring neighbors known (via propagation
//    piggyback and overheard result traffic) to have data for the same
//    queries — enabling earlier aggregation and shared forwarding.  When
//    different queries are best served by different parents, a single
//    multicast transmission carries the per-destination split.
//
// Nodes with nothing to send or relay drop into sleep mode between ticks.
// Sleeping nodes still receive addressed traffic (modelling low-power
// listening: the sender's preamble wakes them) but do not overhear.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "core/innet/payloads.h"
#include "net/network.h"
#include "query/engine.h"
#include "reliable/arq.h"
#include "reliable/profile.h"
#include "routing/routing_tree.h"
#include "routing/semantic_tree.h"
#include "sensing/field_model.h"
#include "tinydb/payloads.h"

namespace ttmqo {

/// Tuning and ablation knobs of the in-network tier.
struct InNetOptions {
  /// Slot width for depth-staggered aggregate transmissions.
  SimDuration agg_slot_ms = 128;
  /// Maximum per-node jitter for source transmissions (deterministic).
  SimDuration source_jitter_ms = 64;
  /// Ablation: query-aware DAG parent selection; when false, messages
  /// follow the fixed routing-tree parent (but packing still applies).
  bool query_aware_routing = true;
  /// Ablation: multi-query packing of rows/partials; when false, one
  /// message per query (but DAG routing still applies).
  bool shared_messages = true;
  /// Idle nodes sleep between ticks.
  bool enable_sleep = true;
  /// Wake this many ms before the next scheduled tick.
  SimDuration sleep_guard_ms = 8;
  /// An overheard "neighbor has data for q" fact stays fresh for this many
  /// epochs of q.
  int has_data_ttl_epochs = 2;
  /// Semantic Routing Tree pruning for node-id-based queries (as in the
  /// baseline; Section 3.2.2).
  bool use_semantic_routing = true;
  /// Liveness-driven failover: a parent candidate silent (nothing heard on
  /// the broadcast channel) for longer than this is blacklisted and routed
  /// around.  0 disables liveness tracking entirely (the default: only
  /// known-failed nodes are avoided).  Pick a timeout larger than the
  /// maintenance-beacon period to avoid false positives.
  SimDuration liveness_timeout_ms = 0;
  /// First blacklist duration; doubled on every repeated offence.
  SimDuration blacklist_base_backoff_ms = 4096;
  /// Upper bound of the blacklist backoff (bounded re-selection: a
  /// recovered parent is re-tried within this horizon at the latest).
  SimDuration blacklist_max_backoff_ms = 32768;
  /// Re-flood each query this many times after submission so nodes that
  /// were unreachable during the initial dissemination still learn it.
  /// 0 disables retries (the default keeps message counts unchanged).
  int dissemination_retries = 0;
  /// Spacing between dissemination re-floods.
  SimDuration dissemination_retry_interval_ms = 8192;
  /// Suppress duplicate (query, epoch, source) rows at relays and the base
  /// station.
  bool duplicate_suppression = true;
  /// Per-hop ARQ transport (acks, retransmits, quarantine) plus the
  /// base-station epoch ledger with NACK-driven gap repair and coverage
  /// annotation.  Off by default; `--reliability=arq` turns it on.
  ArqOptions arq;
};

/// Applies a named reliability profile on top of `options`:
///  * kOff     — leaves everything untouched (the golden-pinned default).
///  * kHarden  — the loss-hardening bundle proven out by the chaos soak:
///               liveness failover, dissemination re-floods, duplicate
///               suppression.
///  * kArq     — kHarden plus the per-hop ARQ transport and base-station
///               gap repair.
void ApplyReliabilityProfile(ReliabilityProfile profile, InNetOptions& options);

/// The tier-2 engine.  API mirrors `TinyDbEngine`.
class InNetworkEngine final : public QueryEngine {
 public:
  InNetworkEngine(Network& network, const FieldModel& field, ResultSink* sink,
                  InNetOptions options = {});

  void SubmitQuery(const Query& query) override;
  void TerminateQuery(QueryId id) override;
  std::string_view name() const override { return "ttmqo-innet"; }

  /// Emits "tier2.submit" / "tier2.terminate" / "tier2.epoch_close" events
  /// (stamped with simulation time) to `sink`; nullptr disables tracing.
  void SetTraceSink(TraceSink* sink) override { trace_ = sink; }

  /// Level structure of the DAG.
  const LevelGraph& level_graph() const { return levels_; }

  /// Fallback fixed tree (used when query-aware routing is disabled and as
  /// the last-resort parent).
  const RoutingTree& routing_tree() const { return tree_; }

  /// Duplicate (query, epoch, source) rows dropped at relays and the base
  /// station (only counted while `duplicate_suppression` is on).
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

  /// Deliveries for already-closed epochs dropped at the base station by
  /// the `closed_through` watermark (keeps the epoch ledger bounded).
  std::uint64_t late_drops() const { return late_drops_; }

  /// Gap-repair requests the base station issued (arq profile only).
  std::uint64_t repair_requests() const { return repair_requests_; }

  /// Gap-repair replies accepted at the base station (arq profile only).
  std::uint64_t repair_replies() const { return repair_replies_; }

  /// The ARQ transport, or nullptr when the run does not use one.
  const ArqTransport* arq() const { return arq_ ? &*arq_ : nullptr; }

 private:
  /// Liveness suspicion of one parent candidate.
  struct Suspicion {
    SimTime blacklisted_until = 0;
    SimDuration backoff = 0;
  };

  struct NodeState {
    std::map<QueryId, Query> active;
    /// Highest dissemination round seen per query (absent = never seen).
    std::map<QueryId, int> prop_round;
    std::set<QueryId> seen_abort;
    /// Queries whose propagation this node forwarded (abort floods follow
    /// the same prune).
    std::set<QueryId> relayed_propagation;
    /// neighbor -> (query -> tick the neighbor was last known to have data).
    std::map<NodeId, std::map<QueryId, SimTime>> has_data;
    /// Per tick: partial state per query, merged until the slot fires.
    std::map<SimTime, std::map<QueryId, std::vector<PartialAggregate>>>
        agg_buffer;
    /// Per tick: own + relayed rows packed at the slot.
    std::map<SimTime, std::vector<RowEntry>> row_buffer;
    std::set<SimTime> slot_scheduled;
    std::set<SimTime> slot_done;
    /// Guard for the single pending tick event (-1 = none).
    SimTime tick_scheduled_for = -1;
    /// Last time this node forwarded someone else's traffic.
    SimTime last_relay = std::numeric_limits<SimTime>::min();
    /// Whether the node produced data at its last tick.
    bool matched_last_tick = false;
    /// Liveness: last time anything was heard from each neighbor (only
    /// maintained when `liveness_timeout_ms > 0`).
    std::map<NodeId, SimTime> last_heard;
    /// Currently / previously blacklisted parent candidates.
    std::map<NodeId, Suspicion> suspicion;
    /// (query, epoch, source) row keys already relayed (duplicate
    /// suppression); pruned with the per-tick horizon.
    std::set<std::tuple<QueryId, SimTime, NodeId>> seen_rows;
    /// The node's own matched reading per tick, cached for gap-repair
    /// replies (arq profile only); pruned with the per-tick horizon.
    std::map<SimTime, RowEntry> own_rows;
  };

  struct BsQueryState {
    explicit BsQueryState(Query q) : query(std::move(q)) {}
    Query query;
    bool terminated = false;
    /// Rows per epoch keyed by source node — at most one row per source
    /// (duplicate deliveries are dropped on arrival).
    std::map<SimTime, std::map<NodeId, Reading>> rows;
    std::map<SimTime, std::vector<PartialAggregate>> partials;
    /// Coverage ledger (arq profile only).  The expectation is *learned*:
    /// a node is expected to contribute to an epoch iff it contributed to
    /// one of the last few epochs (selective predicates make the install
    /// set a wild overestimate — most installed nodes legitimately have no
    /// matching row, and NACKing them every epoch congests the network).
    /// `last_contributed` records each node's most recent row epoch;
    /// `agg_counts` is the analogous recent-contributor-count history for
    /// aggregation queries (which have no per-node rows); `no_data` holds,
    /// per epoch, the nodes that affirmed "no data" through gap repair.
    std::map<NodeId, SimTime> last_contributed;
    std::map<SimTime, std::int64_t> agg_counts;
    std::map<SimTime, std::set<NodeId>> no_data;
    /// Watermark: epochs at or before this are closed; late deliveries for
    /// them are dropped so the per-epoch maps stay bounded.
    SimTime closed_through = std::numeric_limits<SimTime>::min();
  };

  // --- node-side -------------------------------------------------------
  void HandleMessage(NodeId self, const Message& msg, bool addressed);
  /// SRT gates (mirror the baseline's).
  bool ShouldInstall(NodeId self, const Query& query) const;
  bool ShouldForwardPropagation(NodeId self, const Query& query) const;
  void InstallQuery(NodeId self, const Query& query);
  void RemoveQuery(NodeId self, QueryId id);
  void ScheduleTick(NodeId self);
  void OnTick(NodeId self, SimTime t);
  void OnSlot(NodeId self, SimTime t);
  /// Groups `entries` by their next-hop choice and transmits one packed
  /// message per group.
  void SendRows(NodeId self, SimTime t, std::vector<RowEntry> entries);
  void SendAgg(NodeId self, SimTime t,
               std::map<QueryId, std::vector<PartialAggregate>> partials);
  std::map<NodeId, std::vector<QueryId>> ChooseParents(
      NodeId self, std::vector<QueryId> queries);
  void NoteHasData(NodeId self, NodeId sender,
                   const std::vector<QueryId>& queries, SimTime when);
  /// Liveness tracking: records that `self` heard from `sender` now and
  /// clears any suspicion of it.
  void NoteAlive(NodeId self, NodeId sender);
  /// True when `self` should avoid routing through `candidate` because it
  /// has been silent past the liveness timeout.  Blacklists with bounded
  /// exponential backoff; the candidate is optimistically re-tried when the
  /// blacklist expires.
  bool SuspectParent(NodeId self, NodeId candidate);
  void MaybeSleep(NodeId self, SimTime t);
  SimDuration SourceJitter(NodeId node) const;
  SimDuration SlotOffset(NodeId node) const;

  // --- reliability (arq profile) ----------------------------------------
  /// Routes `msg` through the ARQ transport when one is attached (with the
  /// epoch cutoff as the retry deadline), directly otherwise.
  void ReliableSend(Message msg, SimTime deadline);
  /// Retry deadline of a result message for tick `t`: the earliest epoch
  /// close among the queries it serves.
  SimTime ResultDeadline(NodeId self, SimTime t,
                         const std::map<NodeId, std::vector<QueryId>>&
                             dest_queries) const;
  /// A reliable send exhausted its budget: re-route the surviving payload
  /// through fresh parents (bounded re-route chain).
  void OnArqGiveUp(const ArqTransport::GiveUpInfo& info);
  /// The fixed-tree child of `from` that leads to `target`, or
  /// kBaseStationId when `target` is not below `from`.
  NodeId NextHopDown(NodeId from, NodeId target) const;
  /// Base station: find epoch contributors still unaccounted halfway
  /// through the epoch and NACK them down the routing tree.
  void RepairCheck(QueryId id, SimTime epoch_time);
  void SendRepairRequest(NodeId from, NodeId to, QueryId id,
                         SimTime epoch_time, SimTime deadline,
                         std::vector<NodeId> targets);
  void HandleRepairRequest(NodeId self, const RepairRequestPayload& req);
  /// Sends `self`'s answer for (query, epoch) one hop up the tree.
  void SendRepairReply(NodeId self, QueryId id, SimTime epoch_time,
                       SimTime deadline);
  void ForwardRepairReply(NodeId self,
                          std::shared_ptr<const RepairReplyPayload> reply);
  void HandleRepairReply(NodeId self, const Message& msg,
                         const RepairReplyPayload& reply);
  /// The least-suspect upper-level neighbor for control traffic.
  NodeId ControlParent(NodeId self);

  // --- base-station-side -----------------------------------------------
  void BsAccept(const Message& msg);
  void ScheduleEpochClose(QueryId id, SimTime epoch_time);
  void CloseEpoch(QueryId id, SimTime epoch_time);

  /// Builds a time-stamped event when tracing is on (trace_ != nullptr).
  void EmitTrace(TraceEvent event);

  Network& network_;
  const FieldModel& field_;
  ResultSink* sink_;
  TraceSink* trace_ = nullptr;
  InNetOptions options_;
  RoutingTree tree_;
  SemanticRoutingTree srt_;
  LevelGraph levels_;
  std::vector<NodeState> nodes_;
  std::map<QueryId, BsQueryState> bs_queries_;
  /// Present only under the arq profile; the off/harden paths talk to the
  /// network directly and stay byte-identical to the pinned goldens.
  std::optional<ArqTransport> arq_;
  /// Re-route depth of the send currently in flight (give-up chains cap).
  int current_reroute_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t late_drops_ = 0;
  std::uint64_t repair_requests_ = 0;
  std::uint64_t repair_replies_ = 0;
};

}  // namespace ttmqo
