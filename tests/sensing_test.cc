// Unit tests for the sensing layer: attribute catalog, readings, fields.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sensing/attribute.h"
#include "sensing/field_model.h"
#include "sensing/reading.h"
#include "util/check.h"

namespace ttmqo {
namespace {

TEST(AttributeTest, NamesRoundTrip) {
  for (Attribute attr : kAllAttributes) {
    const auto parsed = ParseAttribute(AttributeName(attr));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, attr);
  }
}

TEST(AttributeTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseAttribute("LIGHT"), Attribute::kLight);
  EXPECT_EQ(ParseAttribute("Temp"), Attribute::kTemp);
  EXPECT_FALSE(ParseAttribute("bogus").has_value());
}

TEST(AttributeTest, RangesAreNonDegenerate) {
  for (Attribute attr : kAllAttributes) {
    const Interval range = AttributeRange(attr);
    EXPECT_FALSE(range.empty());
    EXPECT_GT(range.Length(), 0.0);
    EXPECT_GT(AttributeSizeBytes(attr), 0u);
  }
}

TEST(ReadingTest, SetGetAndNodeIdPrepopulated) {
  Reading r(7, 4096);
  EXPECT_EQ(r.node(), 7);
  EXPECT_EQ(r.time(), 4096);
  EXPECT_TRUE(r.Has(Attribute::kNodeId));
  EXPECT_DOUBLE_EQ(r.GetOrThrow(Attribute::kNodeId), 7.0);
  EXPECT_FALSE(r.Has(Attribute::kLight));
  EXPECT_FALSE(r.Get(Attribute::kLight).has_value());
  r.Set(Attribute::kLight, 321.5);
  EXPECT_DOUBLE_EQ(r.GetOrThrow(Attribute::kLight), 321.5);
  EXPECT_THROW(r.GetOrThrow(Attribute::kTemp), CheckFailure);
}

class FieldModelTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<FieldModel> MakeModel() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<UniformFieldModel>(11);
      case 1:
        return std::make_unique<CorrelatedFieldModel>(
            11, CorrelatedFieldModel::Params{});
      default:
        return std::make_unique<HotspotFieldModel>(
            11, HotspotFieldModel::Params{});
    }
  }
};

// Purity is the invariant the whole semantic-equivalence story rests on:
// sampling the same (node, attr, time) twice must give the same value.
TEST_P(FieldModelTest, SamplingIsPure) {
  const auto model = MakeModel();
  const Position pos{40.0, 60.0};
  for (Attribute attr : kAllAttributes) {
    for (SimTime t : {0, 2048, 4096, 1'000'000}) {
      EXPECT_DOUBLE_EQ(model->Sample(3, pos, attr, t),
                       model->Sample(3, pos, attr, t));
    }
  }
}

TEST_P(FieldModelTest, ValuesStayWithinAttributeRanges) {
  const auto model = MakeModel();
  for (Attribute attr : kSensedAttributes) {
    const Interval range = AttributeRange(attr);
    for (NodeId node = 0; node < 30; ++node) {
      const Position pos{static_cast<double>(node % 6) * 20.0,
                         static_cast<double>(node / 6) * 20.0};
      for (SimTime t = 0; t < 10 * 2048; t += 2048) {
        const double v = model->Sample(node, pos, attr, t);
        EXPECT_TRUE(range.Contains(v))
            << AttributeName(attr) << " value " << v << " outside "
            << range.ToString();
      }
    }
  }
}

TEST_P(FieldModelTest, NodeIdAttributeIsTheNodeId) {
  const auto model = MakeModel();
  EXPECT_DOUBLE_EQ(model->Sample(5, Position{0, 0}, Attribute::kNodeId, 999),
                   5.0);
}

TEST_P(FieldModelTest, SampleReadingCollectsRequestedAttributes) {
  const auto model = MakeModel();
  const std::vector<Attribute> attrs = {Attribute::kLight, Attribute::kTemp};
  const Reading r = model->SampleReading(4, Position{20, 20}, attrs, 2048);
  EXPECT_TRUE(r.Has(Attribute::kLight));
  EXPECT_TRUE(r.Has(Attribute::kTemp));
  EXPECT_FALSE(r.Has(Attribute::kHumidity));
  EXPECT_EQ(r.node(), 4);
  EXPECT_EQ(r.time(), 2048);
}

INSTANTIATE_TEST_SUITE_P(AllFieldModels, FieldModelTest,
                         ::testing::Values(0, 1, 2));

TEST(UniformFieldModelTest, DifferentSeedsGiveDifferentFields) {
  UniformFieldModel a(1), b(2);
  const Position pos{0, 0};
  int same = 0;
  for (SimTime t = 0; t < 100 * 2048; t += 2048) {
    if (a.Sample(1, pos, Attribute::kLight, t) ==
        b.Sample(1, pos, Attribute::kLight, t)) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(UniformFieldModelTest, ResamplePeriodQuantizesTime) {
  UniformFieldModel model(5, 2048);
  const Position pos{0, 0};
  // Same bucket -> same value; different bucket -> (almost surely) not.
  EXPECT_DOUBLE_EQ(model.Sample(1, pos, Attribute::kLight, 100),
                   model.Sample(1, pos, Attribute::kLight, 2047));
  EXPECT_NE(model.Sample(1, pos, Attribute::kLight, 0),
            model.Sample(1, pos, Attribute::kLight, 2048));
}

TEST(UniformFieldModelTest, RoughlyUniformOverRange) {
  UniformFieldModel model(17);
  const Interval range = AttributeRange(Attribute::kLight);
  int below_mid = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double v = model.Sample(static_cast<NodeId>(i % 50), Position{0, 0},
                                  Attribute::kLight,
                                  static_cast<SimTime>(i) * 2048);
    if (v < range.lo() + range.Length() / 2) ++below_mid;
  }
  EXPECT_NEAR(static_cast<double>(below_mid) / n, 0.5, 0.05);
}

TEST(CorrelatedFieldModelTest, NearbyNodesAreCorrelated) {
  CorrelatedFieldModel model(23, CorrelatedFieldModel::Params{});
  // Mean absolute difference between 20 ft apart nodes should be far below
  // the difference between 200 ft apart nodes.
  double near = 0.0, far = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto t = static_cast<SimTime>(i) * 2048;
    const double a = model.Sample(1, Position{0, 0}, Attribute::kLight, t);
    const double b = model.Sample(2, Position{20, 0}, Attribute::kLight, t);
    const double c = model.Sample(3, Position{450, 450}, Attribute::kLight, t);
    near += std::fabs(a - b);
    far += std::fabs(a - c);
  }
  EXPECT_LT(near, far);
}

TEST(HotspotFieldModelTest, HotspotElevatesReadings) {
  HotspotFieldModel::Params params;
  params.center = {70, 70};
  params.orbit_radius_feet = 0;  // keep the hotspot stationary
  HotspotFieldModel hotspot(31, params);
  CorrelatedFieldModel base(31, CorrelatedFieldModel::Params{});
  // At the hotspot center the value is boosted relative to the background.
  const double inside =
      hotspot.Sample(1, Position{70, 70}, Attribute::kLight, 2048);
  const double background =
      base.Sample(1, Position{70, 70}, Attribute::kLight, 2048);
  EXPECT_GE(inside, background);
  // Far outside the hotspot radius the field is untouched.
  EXPECT_DOUBLE_EQ(
      hotspot.Sample(2, Position{400, 400}, Attribute::kLight, 2048),
      base.Sample(2, Position{400, 400}, Attribute::kLight, 2048));
}

}  // namespace
}  // namespace ttmqo
