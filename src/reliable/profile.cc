#include "reliable/profile.h"

#include <stdexcept>

#include "util/check.h"

namespace ttmqo {

std::string_view ReliabilityProfileName(ReliabilityProfile profile) {
  switch (profile) {
    case ReliabilityProfile::kOff:
      return "off";
    case ReliabilityProfile::kHarden:
      return "harden";
    case ReliabilityProfile::kArq:
      return "arq";
  }
  Check(false, "unknown reliability profile");
  return "";
}

ReliabilityProfile ParseReliabilityProfile(const std::string& name) {
  if (name == "off") return ReliabilityProfile::kOff;
  if (name == "harden") return ReliabilityProfile::kHarden;
  if (name == "arq") return ReliabilityProfile::kArq;
  throw std::invalid_argument("unknown reliability profile '" + name +
                              "' (off|harden|arq)");
}

}  // namespace ttmqo
