// A `NetworkObserver` that feeds a `MetricsRegistry`.
//
// Maintains per-node, per-message-class counters of transmissions, airtime,
// retransmissions, and drops, plus a network-wide transmit-duration
// histogram — the Prometheus-style counterpart of the `RadioLedger`.
// Attach one per run via `network.observers().Add(...)`; extra base labels
// (e.g. {"mode","ttmqo"}) distinguish runs sharing one registry.
#pragma once

#include <string>

#include "metrics/registry.h"
#include "net/observer.h"

namespace ttmqo {

/// Exported metric names (shared with docs and tests):
///   net_tx_total{node,class}       first-attempt transmissions
///   net_tx_ms_total{node,class}    first-attempt airtime (ms)
///   net_retx_total{node}           retransmission attempts
///   net_retx_ms_total{node}        retransmission airtime (ms)
///   net_drops_total{node}          messages abandoned after retries
///   net_sleep_transitions_total{node}
///   net_node_failures_total
///   net_node_down_total            transient outages begun
///   net_node_recovered_total       transient outages ended
///   net_link_drops_total{node}     deliveries lost to lossy links (receiver)
///   net_tx_duration_ms             histogram over attempt durations
///   net_node_recovery_latency_ms   histogram over outage durations
class MetricsObserver final : public NetworkObserver {
 public:
  /// `registry` must outlive the observer; `base_labels` are appended to
  /// every instrument this observer touches.
  explicit MetricsObserver(MetricsRegistry& registry,
                           MetricLabels base_labels = {});

  void OnTransmit(SimTime time, const Message& msg, double duration_ms,
                  bool retransmission) override;
  void OnDrop(SimTime time, const Message& msg) override;
  void OnSleepChange(SimTime time, NodeId node, bool asleep) override;
  void OnNodeFailed(SimTime time, NodeId node) override;
  void OnNodeDown(SimTime time, NodeId node) override;
  void OnNodeRecovered(SimTime time, NodeId node, SimDuration down_ms) override;
  void OnLinkDrop(SimTime time, const Message& msg, NodeId receiver) override;

 private:
  MetricLabels WithNode(NodeId node) const;
  MetricLabels WithNodeClass(NodeId node, MessageClass cls) const;

  MetricsRegistry* registry_;
  MetricLabels base_labels_;
  Counter* failures_;
  Counter* downs_;
  Counter* recoveries_;
  HistogramMetric* tx_duration_;
  HistogramMetric* recovery_latency_;
};

}  // namespace ttmqo
