#include "core/bs/result_mapper.h"

#include <algorithm>

#include "util/check.h"

namespace ttmqo {
namespace {

// The predicates the base station still has to apply: member constraints
// not already enforced in-network by the synthetic query.  (The synthetic
// query's own predicates filtered the rows at the source, and rows only
// carry the synthetic projection — attributes of constraints the network
// already applied in full need not be present.)
PredicateSet ResidualPredicates(const Query& member, const Query& synthetic) {
  PredicateSet residual;
  for (const Predicate& p : member.predicates().AsList()) {
    const auto applied = synthetic.predicates().ConstraintOn(p.attribute);
    if (applied.has_value() && *applied == p.range) continue;
    residual.Constrain(p.attribute, p.range);
  }
  return residual;
}

EpochResult MapAcquisitionMember(const EpochResult& synthetic,
                                 const Query& member,
                                 const PredicateSet& residual) {
  EpochResult out;
  out.query = member.id();
  out.epoch_time = synthetic.epoch_time;
  out.kind = QueryKind::kAcquisition;
  for (const Reading& row : synthetic.rows) {
    if (!residual.Matches(row)) continue;
    Reading projected(row.node(), row.time());
    for (Attribute attr : member.attributes()) {
      projected.Set(attr, row.GetOrThrow(attr));
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

EpochResult MapAggregationFromRows(const EpochResult& synthetic,
                                   const Query& member,
                                   const PredicateSet& residual) {
  EpochResult out;
  out.query = member.id();
  out.epoch_time = synthetic.epoch_time;
  out.kind = QueryKind::kAggregation;
  std::vector<PartialAggregate> partials;
  partials.reserve(member.aggregates().size());
  for (const AggregateSpec& spec : member.aggregates()) {
    partials.emplace_back(spec);
  }
  for (const Reading& row : synthetic.rows) {
    if (!residual.Matches(row)) continue;
    for (PartialAggregate& p : partials) {
      p.Accumulate(row.GetOrThrow(p.spec().attribute));
    }
  }
  for (const PartialAggregate& p : partials) {
    out.aggregates.emplace_back(p.spec(), p.Finalize());
  }
  return out;
}

EpochResult MapAggregationSubset(const EpochResult& synthetic,
                                 const Query& member) {
  EpochResult out;
  out.query = member.id();
  out.epoch_time = synthetic.epoch_time;
  out.kind = QueryKind::kAggregation;
  for (const AggregateSpec& spec : member.aggregates()) {
    const auto it = std::find_if(
        synthetic.aggregates.begin(), synthetic.aggregates.end(),
        [&](const auto& entry) { return entry.first == spec; });
    Check(it != synthetic.aggregates.end(),
          "synthetic aggregation result lacks a member's aggregate");
    out.aggregates.emplace_back(spec, it->second);
  }
  return out;
}

}  // namespace

std::vector<EpochResult> MapSyntheticResult(const EpochResult& synthetic,
                                            const SyntheticQuery& sq) {
  std::vector<EpochResult> results;
  for (const auto& [uid, member] : sq.members) {
    if (synthetic.epoch_time % member.epoch() != 0) continue;
    if (member.kind() == QueryKind::kAcquisition) {
      Check(synthetic.kind == QueryKind::kAcquisition,
            "an acquisition member cannot be served by an aggregation query");
      results.push_back(MapAcquisitionMember(
          synthetic, member, ResidualPredicates(member, sq.query)));
    } else if (synthetic.kind == QueryKind::kAcquisition) {
      results.push_back(MapAggregationFromRows(
          synthetic, member, ResidualPredicates(member, sq.query)));
    } else {
      results.push_back(MapAggregationSubset(synthetic, member));
    }
  }
  // The synthetic query was the transport: its epoch coverage is the
  // members' epoch coverage.
  for (EpochResult& result : results) {
    result.coverage = synthetic.coverage;
    result.contributing_nodes = synthetic.contributing_nodes;
  }
  return results;
}

}  // namespace ttmqo
