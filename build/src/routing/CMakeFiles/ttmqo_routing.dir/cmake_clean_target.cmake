file(REMOVE_RECURSE
  "libttmqo_routing.a"
)
