// Google-benchmark microbenchmarks for the tier-1 optimizer: cost model
// evaluation, benefit-rate computation, and Algorithm 1/2 throughput as the
// synthetic query list grows.
#include <benchmark/benchmark.h>

#include "core/bs/cost_model.h"
#include "core/bs/rewriter.h"
#include "workload/generator.h"

namespace ttmqo {
namespace {

QueryModelParams BenchModelParams() {
  QueryModelParams params;
  params.aggregation_fraction = 0.5;
  params.predicate_selectivity = 1.0;
  params.randomize_selectivity = true;
  return params;
}

void BM_CostModelEvaluate(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  RandomQueryModel model(BenchModelParams(), 1);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= 64; ++i) queries.push_back(model.Next(i));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.Cost(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_BenefitRate(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  BaseStationOptimizer optimizer(cost);
  RandomQueryModel model(BenchModelParams(), 2);
  for (QueryId i = 1; i <= 8; ++i) {
    (void)optimizer.InsertUserQuery(model.Next(i));
  }
  const Query probe = model.Next(1000);
  const SyntheticQuery* sq = optimizer.Synthetics().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.BenefitRate(probe, *sq));
  }
}
BENCHMARK(BM_BenefitRate);

// Insert `range(0)` user queries into a fresh optimizer; reports the cost
// of Algorithm 1 as the workload grows.
void BM_InsertQueries(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  const auto count = static_cast<std::size_t>(state.range(0));
  RandomQueryModel model(BenchModelParams(), 3);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= count; ++i) queries.push_back(model.Next(i));
  for (auto _ : state) {
    BaseStationOptimizer optimizer(cost);
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(optimizer.InsertUserQuery(q));
    }
    state.counters["synthetics"] =
        static_cast<double>(optimizer.NumSynthetic());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_InsertQueries)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// Full churn: insert then terminate every query (Algorithm 1 + 2).
void BM_InsertTerminateChurn(benchmark::State& state) {
  const Topology topology = Topology::Grid(8);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  const auto count = static_cast<std::size_t>(state.range(0));
  RandomQueryModel model(BenchModelParams(), 4);
  std::vector<Query> queries;
  for (QueryId i = 1; i <= count; ++i) queries.push_back(model.Next(i));
  for (auto _ : state) {
    BaseStationOptimizer optimizer(cost);
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(optimizer.InsertUserQuery(q));
    }
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(optimizer.TerminateUserQuery(q.id()));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * count));
}
BENCHMARK(BM_InsertTerminateChurn)->Arg(8)->Arg(64)->Arg(256);

void BM_IntegrateQueries(benchmark::State& state) {
  RandomQueryModel model(BenchModelParams(), 5);
  const Query a = model.Next(1);
  Query b = model.Next(2);
  while (!IsRewritable(a, b)) b = model.Next(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Integrate(100, a, b));
  }
}
BENCHMARK(BM_IntegrateQueries);

}  // namespace
}  // namespace ttmqo

BENCHMARK_MAIN();
