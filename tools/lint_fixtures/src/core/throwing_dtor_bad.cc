// Fixture: both destructors below must trigger `throwing-dtor`.
#include <stdexcept>

namespace fixture {

struct ThrowsInBody {
  ~ThrowsInBody() {
    if (fail_) {
      throw std::runtime_error("destructor must not throw");
    }
  }
  bool fail_ = false;
};

struct DeclaredThrowing {
  ~DeclaredThrowing() noexcept(false);
};

}  // namespace fixture
