// A general experiment driver: every knob of the harness on the command
// line.  Useful for quick what-if studies without writing code.
//
//   $ run_experiment --workload=C --mode=ttmqo --side=8
//   $ run_experiment --workload=random --queries=40 --concurrency=12
//   $ run_experiment --workload=A --topology=random --nodes=30
//
// Prints the run summary, per-mode savings (when --compare is given), and
// the energy picture.
#include <cstdio>
#include <iostream>

#include "metrics/energy.h"
#include "metrics/table.h"
#include "util/flags.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace {

using namespace ttmqo;

OptimizationMode ParseMode(const std::string& name) {
  if (name == "baseline") return OptimizationMode::kBaseline;
  if (name == "bs") return OptimizationMode::kBaseStationOnly;
  if (name == "innet") return OptimizationMode::kInNetworkOnly;
  if (name == "ttmqo") return OptimizationMode::kTwoTier;
  throw std::invalid_argument("unknown --mode (baseline|bs|innet|ttmqo)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = Flags::Parse(argc, argv);
    const std::string workload = flags.GetString("workload", "C");
    const bool compare = flags.GetBool("compare", false);
    const std::string mode_name = flags.GetString("mode", "ttmqo");

    RunConfig config;
    config.grid_side = static_cast<std::size_t>(flags.GetInt("side", 4));
    if (flags.GetString("topology", "grid") == "random") {
      config.topology = TopologyKind::kRandom;
      config.random_nodes =
          static_cast<std::size_t>(flags.GetInt("nodes", 25));
      config.random_side_feet = flags.GetDouble("area-side", 120.0);
    }
    config.duration_ms = flags.GetInt("duration-ms", 40 * 12288);
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
    config.channel.collision_prob = flags.GetDouble("collisions", 0.02);
    config.alpha = flags.GetDouble("alpha", 0.6);

    std::vector<WorkloadEvent> schedule;
    if (workload == "random") {
      QueryModelParams params;
      params.predicate_selectivity = 1.0;
      params.randomize_selectivity = true;
      RandomQueryModel model(params, config.seed ^ 0xabcULL);
      const auto queries =
          static_cast<std::size_t>(flags.GetInt("queries", 40));
      const double concurrency = flags.GetDouble("concurrency", 8.0);
      schedule = DynamicSchedule(model, queries, 40'000.0,
                                 concurrency * 40'000.0, config.seed);
      SimTime end = 0;
      for (const auto& event : schedule) end = std::max(end, event.time);
      config.duration_ms = std::max(config.duration_ms, end + 4 * 24576);
    } else {
      schedule = StaticSchedule(WorkloadByName(workload));
    }

    for (const std::string& unread : flags.UnreadFlags()) {
      std::fprintf(stderr, "unknown flag --%s\n", unread.c_str());
      return 2;
    }

    const std::vector<OptimizationMode> modes =
        compare ? std::vector<OptimizationMode>{
                      OptimizationMode::kBaseline,
                      OptimizationMode::kBaseStationOnly,
                      OptimizationMode::kInNetworkOnly,
                      OptimizationMode::kTwoTier}
                : std::vector<OptimizationMode>{ParseMode(mode_name)};

    TablePrinter table({"mode", "avg tx %", "messages", "retx", "results",
                        "avg net queries", "sleep %"});
    double baseline_tx = -1.0;
    for (OptimizationMode mode : modes) {
      config.mode = mode;
      const RunResult run = RunExperiment(config, schedule);
      if (mode == OptimizationMode::kBaseline) {
        baseline_tx = run.summary.avg_transmission_fraction;
      }
      table.AddRow(
          {std::string(OptimizationModeName(mode)),
           TablePrinter::Num(run.summary.avg_transmission_fraction * 100, 4),
           std::to_string(run.summary.total_messages),
           std::to_string(run.summary.retransmissions),
           std::to_string(run.results.size()),
           TablePrinter::Num(run.avg_network_queries, 2),
           TablePrinter::Num(run.summary.avg_sleep_fraction * 100, 1)});
      if (compare && mode == OptimizationMode::kTwoTier &&
          baseline_tx > 0) {
        std::printf("TTMQO saves %.1f%% of average transmission time\n\n",
                    SavingsPercent(baseline_tx,
                                   run.summary.avg_transmission_fraction));
      }
    }
    table.Print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
