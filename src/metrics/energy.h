// Radio energy accounting.
//
// The paper uses transmission time as its energy proxy ("radio transmission
// is the most energy intensive operation a node performs").  This module
// completes the picture with a standard three-state radio power model
// (transmit / listen / sleep) so the sleep-mode benefit of the in-network
// tier is quantifiable: a node's energy over a window is
//
//   E = P_tx * t_transmit + P_listen * t_listen + P_sleep * t_sleep
//
// with t_listen = elapsed - t_transmit - t_sleep.  Defaults are Mica2-class
// figures (roughly 60 mW transmit, 30 mW listen/receive, 30 uW sleep).
#pragma once

#include "net/ledger.h"
#include "util/time.h"

namespace ttmqo {

/// Power draw of each radio state, in milliwatts.
struct EnergyParams {
  double transmit_mw = 60.0;
  double listen_mw = 30.0;
  double sleep_mw = 0.03;
};

/// Energy one node consumed over `elapsed` ms, in millijoules.
double NodeEnergyMj(const NodeRadioStats& stats, SimDuration elapsed,
                    const EnergyParams& params = {});

/// Mean energy per sensor node (excluding the base station), in mJ.
double AverageSensorEnergyMj(const RadioLedger& ledger, SimDuration elapsed,
                             const EnergyParams& params = {});

/// The highest per-sensor energy — the node that dies first under battery
/// power, i.e. the network-lifetime bottleneck.
double MaxSensorEnergyMj(const RadioLedger& ledger, SimDuration elapsed,
                         const EnergyParams& params = {});

}  // namespace ttmqo
