// Selectivity estimation for query predicates.
//
// Implements the `sel(q_i, N_k)` term of Eq. (1): the fraction of nodes at
// routing level k whose readings satisfy a predicate conjunction.  Attribute
// independence is assumed (selectivities multiply), as is standard.  The
// registry can hold one distribution per routing level or a single shared
// distribution; the paper's experiments use the latter ("we only use one
// distribution for all the levels, which actually biases against our
// techniques", Section 3.1.2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "query/predicate.h"
#include "sensing/attribute.h"
#include "sensing/reading.h"
#include "stats/histogram.h"

namespace ttmqo {

/// Per-attribute histograms describing the readings of one set of nodes.
class AttributeDistribution {
 public:
  /// Builds uniform-prior histograms (`bins` buckets per attribute).
  explicit AttributeDistribution(std::size_t bins = 32);

  /// Folds every sampled attribute of `reading` into the histograms.
  void Observe(const Reading& reading);

  /// Estimated fraction of nodes whose readings satisfy `predicates`
  /// (product over constrained attributes).
  double Selectivity(const PredicateSet& predicates) const;

  /// Total observations folded into the `light` histogram (proxy for age).
  double WeightOf(Attribute attr) const;

  /// Bumped on every `Observe`; consumers caching selectivity-derived
  /// values (the tier-1 cost memos) compare versions to detect staleness.
  std::uint64_t version() const { return version_; }

 private:
  std::vector<Histogram> histograms_;  // indexed by AttributeIndex
  std::uint64_t version_ = 0;
};

/// Distributions per routing level with a shared fallback.
class SelectivityEstimator {
 public:
  /// Creates an estimator with only the shared (all-levels) distribution.
  explicit SelectivityEstimator(std::size_t bins = 32);

  /// The shared distribution (levels without their own use this one).
  AttributeDistribution& shared() { return shared_; }
  const AttributeDistribution& shared() const { return shared_; }

  /// Creates (if needed) and returns the distribution for `level`.
  AttributeDistribution& ForLevel(std::size_t level);

  /// Estimated selectivity of `predicates` over nodes at `level`; falls back
  /// to the shared distribution when the level has no observations.
  double Selectivity(const PredicateSet& predicates, std::size_t level) const;

  /// Estimated selectivity using the shared distribution.
  double Selectivity(const PredicateSet& predicates) const;

  /// Monotone counter covering every distribution in the estimator; changes
  /// whenever any histogram absorbed an observation.  The tier-1 optimizer
  /// keys its cost/benefit memo caches to this.
  std::uint64_t Version() const;

 private:
  std::size_t bins_;
  AttributeDistribution shared_;
  std::map<std::size_t, AttributeDistribution> per_level_;
  // Bumped when the estimator's shape changes (a per-level distribution is
  // created): even an observation-free level stops falling back to the
  // shared distribution, so shape changes must look like new versions too.
  std::uint64_t structure_version_ = 0;
};

}  // namespace ttmqo
