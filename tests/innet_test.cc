// End-to-end tests of the in-network (tier 2) engine.
#include <gtest/gtest.h>

#include "core/innet/innet_engine.h"
#include "query/parser.h"
#include "test_helpers.h"
#include "tinydb/tinydb_engine.h"

namespace ttmqo {
namespace {

using ::ttmqo::testing::FillOracle;

class InNetEngineTest : public ::testing::Test {
 protected:
  InNetEngineTest()
      : topology_(Topology::Grid(4)),
        network_(topology_, RadioParams{}, ChannelParams{}, 42),
        field_(7) {}

  void RunWith(const std::vector<Query>& queries, SimTime until,
               InNetOptions options = {}) {
    InNetworkEngine engine(network_, field_, &log_, options);
    for (const Query& q : queries) engine.SubmitQuery(q);
    network_.sim().RunUntil(until);
  }

  Topology topology_;
  Network network_;
  UniformFieldModel field_;
  ResultLog log_;
};

TEST_F(InNetEngineTest, AcquisitionMatchesOracle) {
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 300 EPOCH DURATION 4096");
  RunWith({q}, 10 * 4096);
  ResultLog oracle;
  FillOracle(oracle, q, 10 * 4096, field_, topology_);
  EXPECT_GT(log_.size(), 0u);
  const auto diff = CompareResultLogs(oracle, log_, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(InNetEngineTest, AggregationMatchesOracle) {
  const Query q = ParseQuery(
      2, "SELECT MAX(light), AVG(temp) EPOCH DURATION 4096");
  RunWith({q}, 10 * 4096);
  ResultLog oracle;
  FillOracle(oracle, q, 10 * 4096, field_, topology_);
  const auto diff = CompareResultLogs(oracle, log_, {q});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(InNetEngineTest, ManyConcurrentQueriesAllMatchOracle) {
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT light WHERE light > 200 EPOCH DURATION 4096"),
      ParseQuery(2, "SELECT light, temp WHERE light < 700 EPOCH DURATION "
                    "8192"),
      ParseQuery(3, "SELECT MAX(light) EPOCH DURATION 4096"),
      ParseQuery(4, "SELECT MIN(temp) WHERE temp > 20 EPOCH DURATION 6144"),
      ParseQuery(5, "SELECT SUM(light) WHERE light > 500 EPOCH DURATION "
                    "12288"),
  };
  const SimTime until = 6 * 12288;
  RunWith(queries, until);
  ResultLog oracle;
  for (const Query& q : queries) {
    FillOracle(oracle, q, until, field_, topology_);
  }
  const auto diff = CompareResultLogs(oracle, log_, queries, 1e-6);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(InNetEngineTest, SharedMessagesBeatBaselineTraffic) {
  // Eight identical full-selectivity acquisition queries: tier 2 should
  // send roughly one shared message where the baseline sends eight.
  std::vector<Query> queries;
  for (QueryId i = 1; i <= 8; ++i) {
    queries.push_back(ParseQuery(i, "SELECT light EPOCH DURATION 4096"));
  }
  RunWith(queries, 8 * 4096);
  const double innet_ms = network_.ledger().TotalTransmitMs();

  Network baseline_net(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog baseline_log;
  TinyDbEngine baseline(baseline_net, field_, &baseline_log);
  for (const Query& q : queries) baseline.SubmitQuery(q);
  baseline_net.sim().RunUntil(8 * 4096);
  const double baseline_ms = baseline_net.ledger().TotalTransmitMs();

  EXPECT_LT(innet_ms, 0.4 * baseline_ms)
      << "shared messages should cut transmit time by well over half";
}

TEST_F(InNetEngineTest, EpochPhaseAlignmentSharesNonDividingEpochs) {
  // 4096 vs 6144: not mergeable at tier 1, but tier 2 shares every
  // coinciding tick (12288, 24576, ...).
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT light EPOCH DURATION 4096"),
      ParseQuery(2, "SELECT light EPOCH DURATION 6144"),
  };
  RunWith(queries, 12 * 4096);
  const auto shared_msgs = network_.ledger().TotalSent(MessageClass::kResult);

  Network baseline_net(topology_, RadioParams{}, ChannelParams{}, 42);
  ResultLog baseline_log;
  TinyDbEngine baseline(baseline_net, field_, &baseline_log);
  for (const Query& q : queries) baseline.SubmitQuery(q);
  baseline_net.sim().RunUntil(12 * 4096);
  const auto baseline_msgs =
      baseline_net.ledger().TotalSent(MessageClass::kResult);
  EXPECT_LT(shared_msgs, baseline_msgs);
}

TEST_F(InNetEngineTest, CorrectWithSleepDisabledAndEnabled) {
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 600 EPOCH DURATION 4096");
  ResultLog oracle;
  FillOracle(oracle, q, 8 * 4096, field_, topology_);

  for (bool sleep : {false, true}) {
    Network net(topology_, RadioParams{}, ChannelParams{}, 42);
    ResultLog log;
    InNetOptions options;
    options.enable_sleep = sleep;
    InNetworkEngine engine(net, field_, &log, options);
    engine.SubmitQuery(q);
    net.sim().RunUntil(8 * 4096);
    const auto diff = CompareResultLogs(oracle, log, {q});
    EXPECT_FALSE(diff.has_value()) << "sleep=" << sleep << ": " << *diff;
  }
}

TEST_F(InNetEngineTest, SleepModeAccumulatesSleepTime) {
  // A very selective query leaves most nodes idle: they should sleep.
  const Query q =
      ParseQuery(1, "SELECT light WHERE light > 990 EPOCH DURATION 8192");
  InNetOptions options;
  options.enable_sleep = true;
  RunWith({q}, 10 * 8192, options);
  double total_sleep = 0.0;
  for (NodeId n = 1; n < topology_.size(); ++n) {
    total_sleep += network_.ledger().StatsOf(n).sleep_ms;
  }
  EXPECT_GT(total_sleep, 0.0);
}

TEST_F(InNetEngineTest, AblationFlagsStillProduceCorrectResults) {
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT light WHERE light > 300 EPOCH DURATION 4096"),
      ParseQuery(2, "SELECT MAX(light) EPOCH DURATION 8192"),
  };
  ResultLog oracle;
  for (const Query& q : queries) {
    FillOracle(oracle, q, 8 * 4096, field_, topology_);
  }
  for (bool dag : {false, true}) {
    for (bool shared : {false, true}) {
      Network net(topology_, RadioParams{}, ChannelParams{}, 42);
      ResultLog log;
      InNetOptions options;
      options.query_aware_routing = dag;
      options.shared_messages = shared;
      InNetworkEngine engine(net, field_, &log, options);
      for (const Query& q : queries) engine.SubmitQuery(q);
      net.sim().RunUntil(8 * 4096);
      const auto diff = CompareResultLogs(oracle, log, queries, 1e-6);
      EXPECT_FALSE(diff.has_value())
          << "dag=" << dag << " shared=" << shared << ": " << *diff;
    }
  }
}

TEST_F(InNetEngineTest, TerminationStopsTraffic) {
  const Query q = ParseQuery(1, "SELECT light EPOCH DURATION 4096");
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(q);
  network_.sim().ScheduleAt(4 * 4096 + 100, [&] { engine.TerminateQuery(1); });
  network_.sim().RunUntil(6 * 4096);
  const auto msgs_at_kill = network_.ledger().TotalSent(MessageClass::kResult);
  network_.sim().RunUntil(12 * 4096);
  // After the abort flood settles no further result traffic flows.
  EXPECT_EQ(network_.ledger().TotalSent(MessageClass::kResult), msgs_at_kill);
}

TEST_F(InNetEngineTest, DynamicArrivalMidRunIsServed) {
  InNetworkEngine engine(network_, field_, &log_);
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network_.sim().ScheduleAt(3 * 4096 + 50, [&] {
    engine.SubmitQuery(
        ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 4096"));
  });
  network_.sim().RunUntil(8 * 4096);
  // The late query gets results from its first full epoch on.
  EXPECT_EQ(log_.Find(2, 3 * 4096), nullptr);
  EXPECT_NE(log_.Find(2, 5 * 4096), nullptr);
  const EpochResult* r = log_.Find(2, 5 * 4096);
  ASSERT_FALSE(r->aggregates.empty());
  EXPECT_TRUE(r->aggregates.front().second.has_value());
}

}  // namespace
}  // namespace ttmqo
