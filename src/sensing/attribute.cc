#include "sensing/attribute.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace ttmqo {

std::string_view AttributeName(Attribute attr) {
  switch (attr) {
    case Attribute::kNodeId:
      return "nodeid";
    case Attribute::kLight:
      return "light";
    case Attribute::kTemp:
      return "temp";
    case Attribute::kHumidity:
      return "humidity";
    case Attribute::kVoltage:
      return "voltage";
    case Attribute::kX:
      return "xpos";
    case Attribute::kY:
      return "ypos";
  }
  Check(false, "unknown attribute");
  return "";
}

std::optional<Attribute> ParseAttribute(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (Attribute attr : kAllAttributes) {
    if (lower == AttributeName(attr)) return attr;
  }
  return std::nullopt;
}

Interval AttributeRange(Attribute attr) {
  switch (attr) {
    case Attribute::kNodeId:
      return Interval(0, 65535);
    case Attribute::kLight:
      // Mica2 photoresistor readings; the paper's example predicates (e.g.
      // 100 < light < 600) live inside this range.
      return Interval(0, 1000);
    case Attribute::kTemp:
      return Interval(0, 100);
    case Attribute::kHumidity:
      return Interval(0, 100);
    case Attribute::kVoltage:
      return Interval(0, 5);
    case Attribute::kX:
    case Attribute::kY:
      // Deployment plane extent in feet; supports grids up to 17x17 at the
      // paper's 20 ft spacing.
      return Interval(0, 320);
  }
  Check(false, "unknown attribute");
  return Interval();
}

std::size_t AttributeSizeBytes(Attribute attr) {
  // All readings are 16-bit ADC samples; nodeid is a 16-bit address.
  (void)attr;
  return 2;
}

}  // namespace ttmqo
