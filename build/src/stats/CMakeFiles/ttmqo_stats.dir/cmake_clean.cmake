file(REMOVE_RECURSE
  "CMakeFiles/ttmqo_stats.dir/histogram.cc.o"
  "CMakeFiles/ttmqo_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ttmqo_stats.dir/selectivity.cc.o"
  "CMakeFiles/ttmqo_stats.dir/selectivity.cc.o.d"
  "libttmqo_stats.a"
  "libttmqo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmqo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
