// Tests for the workload generator, static workloads and the experiment
// runner.
#include <gtest/gtest.h>

#include <set>

#include "workload/generator.h"
#include "workload/runner.h"
#include "workload/static_workloads.h"

namespace ttmqo {
namespace {

QueryModelParams DefaultParams() {
  QueryModelParams params;
  params.predicate_selectivity = 0.6;
  return params;
}

TEST(RandomQueryModelTest, DeterministicGivenSeed) {
  RandomQueryModel a(DefaultParams(), 9);
  RandomQueryModel b(DefaultParams(), 9);
  for (QueryId i = 1; i <= 50; ++i) {
    EXPECT_EQ(a.Next(i).ToSql(), b.Next(i).ToSql());
  }
}

TEST(RandomQueryModelTest, RespectsTheSection43Model) {
  QueryModelParams params = DefaultParams();
  params.aggregation_fraction = 0.5;
  RandomQueryModel model(params, 3);
  int aggregation = 0;
  for (QueryId i = 1; i <= 400; ++i) {
    const Query q = model.Next(i);
    EXPECT_EQ(q.id(), i);
    // Epoch drawn from the paper's set.
    EXPECT_NE(std::find(params.epochs.begin(), params.epochs.end(),
                        q.epoch()),
              params.epochs.end());
    if (q.kind() == QueryKind::kAggregation) {
      ++aggregation;
      ASSERT_EQ(q.aggregates().size(), 1u);
      const AggregateOp op = q.aggregates()[0].op;
      EXPECT_TRUE(op == AggregateOp::kMax || op == AggregateOp::kMin);
    }
    // Predicate coverage: one attribute, requested width.
    const auto preds = q.predicates().AsList();
    ASSERT_LE(preds.size(), 1u);
    if (!preds.empty()) {
      const double coverage = preds[0].range.Length() /
                              AttributeRange(preds[0].attribute).Length();
      EXPECT_NEAR(coverage, 0.6, 1e-9);
    }
  }
  EXPECT_NEAR(aggregation / 400.0, 0.5, 0.1);
}

TEST(RandomQueryModelTest, SelectivityOneMeansNoPredicate) {
  QueryModelParams params = DefaultParams();
  params.predicate_selectivity = 1.0;
  RandomQueryModel model(params, 3);
  for (QueryId i = 1; i <= 20; ++i) {
    EXPECT_TRUE(model.Next(i).predicates().IsUnconstrained());
  }
}

TEST(RandomQueryModelTest, AcquisitionSelectsAllWhenConfigured) {
  QueryModelParams params = DefaultParams();
  params.aggregation_fraction = 0.0;
  params.acquisition_selects_all = true;
  RandomQueryModel model(params, 4);
  const Query q = model.Next(1);
  // All configured attributes plus nodeid.
  EXPECT_EQ(q.attributes().size(), params.attributes.size() + 1);
}

TEST(RandomQueryModelTest, RejectsBadParams) {
  QueryModelParams params = DefaultParams();
  params.epochs = {1000};  // not a multiple of 2048
  EXPECT_THROW(RandomQueryModel(params, 1), std::invalid_argument);
  params = DefaultParams();
  params.predicate_selectivity = 0.0;
  EXPECT_THROW(RandomQueryModel(params, 1), std::invalid_argument);
}

TEST(DynamicScheduleTest, WellFormed) {
  RandomQueryModel model(DefaultParams(), 5);
  const auto events = DynamicSchedule(model, 100, 40'000, 320'000, 6);
  ASSERT_EQ(events.size(), 200u);
  // Sorted by time; every submit precedes its terminate.
  std::map<QueryId, SimTime> submit_times;
  SimTime prev = 0;
  for (const auto& event : events) {
    EXPECT_GE(event.time, prev);
    prev = event.time;
    if (event.kind == WorkloadEvent::Kind::kSubmit) {
      ASSERT_TRUE(event.query.has_value());
      EXPECT_EQ(event.query->id(), event.id);
      submit_times[event.id] = event.time;
    } else {
      ASSERT_TRUE(submit_times.contains(event.id));
      // Runs at least two epochs.
      EXPECT_GE(event.time - submit_times[event.id], 2 * kMinEpochDurationMs);
    }
  }
  EXPECT_EQ(submit_times.size(), 100u);
}

TEST(DynamicScheduleTest, ConcurrencyTracksLittlesLaw) {
  RandomQueryModel model(DefaultParams(), 5);
  // duration/interarrival = 16 expected concurrent queries.
  const auto events = DynamicSchedule(model, 400, 40'000, 640'000, 6);
  double area = 0;
  int active = 0;
  SimTime prev = 0;
  for (const auto& event : events) {
    area += static_cast<double>(event.time - prev) * active;
    prev = event.time;
    active += event.kind == WorkloadEvent::Kind::kSubmit ? 1 : -1;
  }
  const double avg = area / static_cast<double>(prev);
  EXPECT_NEAR(avg, 16.0, 4.0);
}

TEST(RandomQueryModelTest, TemplatePoolRepeatsQueries) {
  QueryModelParams params = DefaultParams();
  params.template_pool = 5;
  RandomQueryModel model(params, 11);
  std::set<std::string> shapes;
  for (QueryId i = 1; i <= 200; ++i) {
    shapes.insert(model.Next(i).WithId(0).ToSql());
  }
  // Every query is one of the five templates.
  EXPECT_LE(shapes.size(), 5u);
  EXPECT_GE(shapes.size(), 2u);
}

TEST(RandomQueryModelTest, TemplatePoolIsSkewed) {
  QueryModelParams params = DefaultParams();
  params.template_pool = 10;
  RandomQueryModel model(params, 11);
  std::map<std::string, int> counts;
  for (QueryId i = 1; i <= 1000; ++i) {
    ++counts[model.Next(i).WithId(0).ToSql()];
  }
  // The hottest 20% of templates (2 of 10) should carry ~80% of arrivals.
  std::vector<int> sorted;
  for (const auto& [sql, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());
  const int hot = sorted.size() >= 2 ? sorted[0] + sorted[1] : sorted[0];
  EXPECT_GT(hot, 700);
}

TEST(StaticWorkloadsTest, AllWellFormed) {
  for (const char* name : {"A", "B", "C"}) {
    const auto queries = WorkloadByName(name);
    EXPECT_EQ(queries.size(), 8u);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(queries[i].id(), i + 1);
      EXPECT_TRUE(IsValidEpochDuration(queries[i].epoch()));
    }
  }
  EXPECT_THROW(WorkloadByName("Z"), std::invalid_argument);
}

TEST(StaticWorkloadsTest, WorkloadBResistsTier1) {
  // The design intent of WORKLOAD_B: tier 1 cannot collapse it much.
  const Topology topology = Topology::Grid(4);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  BaseStationOptimizer optimizer(cost);
  for (const Query& q : WorkloadB()) (void)optimizer.InsertUserQuery(q);
  EXPECT_GE(optimizer.NumSynthetic(), 6u);
}

TEST(StaticWorkloadsTest, WorkloadAIsHighlyMergeable) {
  const Topology topology = Topology::Grid(4);
  const SelectivityEstimator estimator;
  const CostModel cost(topology, RadioParams{}, estimator);
  BaseStationOptimizer optimizer(cost);
  for (const Query& q : WorkloadA()) (void)optimizer.InsertUserQuery(q);
  EXPECT_LE(optimizer.NumSynthetic(), 2u);
}

TEST(RunnerTest, DeterministicGivenConfig) {
  RunConfig config;
  config.grid_side = 4;
  config.duration_ms = 6 * 4096;
  config.seed = 11;
  config.channel.collision_prob = 0.05;  // exercise the stochastic path too
  const auto schedule = StaticSchedule(WorkloadA());
  const RunResult a = RunExperiment(config, schedule);
  const RunResult b = RunExperiment(config, schedule);
  EXPECT_EQ(a.summary.total_messages, b.summary.total_messages);
  EXPECT_DOUBLE_EQ(a.summary.total_transmit_ms, b.summary.total_transmit_ms);
  EXPECT_EQ(a.summary.retransmissions, b.summary.retransmissions);
  EXPECT_EQ(a.results.size(), b.results.size());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(RunnerTest, SeedChangesTheRun) {
  RunConfig config;
  config.grid_side = 4;
  config.duration_ms = 6 * 4096;
  config.channel.collision_prob = 0.05;
  const auto schedule = StaticSchedule(WorkloadA());
  config.seed = 1;
  const RunResult a = RunExperiment(config, schedule);
  config.seed = 2;
  const RunResult b = RunExperiment(config, schedule);
  EXPECT_NE(a.summary.total_transmit_ms, b.summary.total_transmit_ms);
}

TEST(RunnerTest, RejectsEventsOutsideTheWindow) {
  RunConfig config;
  config.duration_ms = 4096;
  auto schedule = StaticSchedule(WorkloadA(), /*at=*/8192);
  EXPECT_THROW(RunExperiment(config, schedule), std::invalid_argument);
}

TEST(RunnerTest, TracksPeakConcurrency) {
  RunConfig config;
  config.grid_side = 4;
  config.duration_ms = 8 * 4096;
  const RunResult run = RunExperiment(config, StaticSchedule(WorkloadA()));
  EXPECT_EQ(run.peak_user_queries, 8u);
  EXPECT_GT(run.avg_network_queries, 0.0);
}

}  // namespace
}  // namespace ttmqo
