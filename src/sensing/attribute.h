// The sensor attribute catalog.
//
// TinyDB exposes each mote's sensors as columns of a virtual table
// `sensors`; queries project attributes and filter on range predicates.
// The paper's experiments use `nodeid`, `light` and `temp` (Section 4.3);
// we additionally model `humidity` and `voltage` for richer workloads.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/interval.h"

namespace ttmqo {

/// A sensor attribute (column of the virtual `sensors` table).
/// `nodeid`, `xpos` and `ypos` are *constant* attributes — known at
/// deployment time — so predicates over them describe node-id-based and
/// region-based queries, which the Semantic Routing Tree can prune
/// (Section 3.2.2).
enum class Attribute : std::uint8_t {
  kNodeId = 0,
  kLight = 1,
  kTemp = 2,
  kHumidity = 3,
  kVoltage = 4,
  kX = 5,
  kY = 6,
};

/// Number of distinct attributes in the catalog.
inline constexpr std::size_t kNumAttributes = 7;

/// All attributes, in enum order.
inline constexpr std::array<Attribute, kNumAttributes> kAllAttributes = {
    Attribute::kNodeId, Attribute::kLight, Attribute::kTemp,
    Attribute::kHumidity, Attribute::kVoltage, Attribute::kX, Attribute::kY};

/// The attributes a query may sense (everything except the constant
/// columns, which cost nothing to acquire).
inline constexpr std::array<Attribute, 4> kSensedAttributes = {
    Attribute::kLight, Attribute::kTemp, Attribute::kHumidity,
    Attribute::kVoltage};

/// True for deployment-time-constant columns (`nodeid`, `xpos`, `ypos`).
constexpr bool IsConstantAttribute(Attribute attr) {
  return attr == Attribute::kNodeId || attr == Attribute::kX ||
         attr == Attribute::kY;
}

/// Lower-case SQL name of an attribute ("light", "temp", ...).
std::string_view AttributeName(Attribute attr);

/// Parses an attribute name (case-insensitive); nullopt when unknown.
std::optional<Attribute> ParseAttribute(std::string_view name);

/// The physical value range of an attribute.  Selectivity estimation under
/// the uniform assumption divides predicate width by this range's length
/// (the `L` in the paper's worked example, Section 3.1.3).
Interval AttributeRange(Attribute attr);

/// Payload bytes one attribute value occupies in a result message.  TinyDB
/// readings are 16-bit ADC values.
std::size_t AttributeSizeBytes(Attribute attr);

/// Stable index of an attribute for array-based lookups.
constexpr std::size_t AttributeIndex(Attribute attr) {
  return static_cast<std::size_t>(attr);
}

}  // namespace ttmqo
