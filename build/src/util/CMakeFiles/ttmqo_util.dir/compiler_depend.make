# Empty compiler generated dependencies file for ttmqo_util.
# This may be replaced when dependencies are built.
