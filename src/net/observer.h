// Radio-level event observation.
//
// `NetworkObserver` is the callback interface for radio events (tracing,
// visualization, metrics, debugging).  `ObserverMux` fans every event out
// to any number of registered observers, so a trace writer, a metrics
// collector, and an epoch sampler can all watch one `Network` at once.
#pragma once

#include <vector>

#include "net/message.h"
#include "util/ids.h"
#include "util/time.h"

namespace ttmqo {

/// Observes radio-level events.  All callbacks default to no-ops; implement
/// only what you need.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;

  /// A transmission attempt began (including retransmissions).
  virtual void OnTransmit(SimTime /*time*/, const Message& /*msg*/,
                          double /*duration_ms*/, bool /*retransmission*/) {}
  /// A message was abandoned after exhausting its retries.
  virtual void OnDrop(SimTime /*time*/, const Message& /*msg*/) {}
  /// A node changed power state.
  virtual void OnSleepChange(SimTime /*time*/, NodeId /*node*/,
                             bool /*asleep*/) {}
  /// A node crashed (permanent fault).
  virtual void OnNodeFailed(SimTime /*time*/, NodeId /*node*/) {}
  /// A node entered a transient outage (it will recover).
  virtual void OnNodeDown(SimTime /*time*/, NodeId /*node*/) {}
  /// A node recovered from a transient outage that lasted `down_ms`.
  virtual void OnNodeRecovered(SimTime /*time*/, NodeId /*node*/,
                               SimDuration /*down_ms*/) {}
  /// A delivery to `receiver` was lost on a lossy link (independent of the
  /// contention model; the sender does not retry).
  virtual void OnLinkDrop(SimTime /*time*/, const Message& /*msg*/,
                          NodeId /*receiver*/) {}
};

/// Fans radio events out to every registered observer, in registration
/// order.  Observers are borrowed, never owned, and must outlive their
/// registration.
class ObserverMux final : public NetworkObserver {
 public:
  /// Registers `observer`.  Null pointers and duplicates are ignored.
  void Add(NetworkObserver* observer);

  /// Unregisters `observer`; returns false when it was not registered.
  bool Remove(NetworkObserver* observer);

  /// Number of registered observers.
  std::size_t size() const { return observers_.size(); }

  /// True when no observer is registered (events need not be dispatched).
  bool empty() const { return observers_.empty(); }

  void OnTransmit(SimTime time, const Message& msg, double duration_ms,
                  bool retransmission) override;
  void OnDrop(SimTime time, const Message& msg) override;
  void OnSleepChange(SimTime time, NodeId node, bool asleep) override;
  void OnNodeFailed(SimTime time, NodeId node) override;
  void OnNodeDown(SimTime time, NodeId node) override;
  void OnNodeRecovered(SimTime time, NodeId node, SimDuration down_ms) override;
  void OnLinkDrop(SimTime time, const Message& msg, NodeId receiver) override;

 private:
  std::vector<NetworkObserver*> observers_;
};

}  // namespace ttmqo
