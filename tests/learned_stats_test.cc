// Tests for the learned-statistics option: the base station feeds returned
// rows into the selectivity estimator (Section 3.1.2, "Statistics").
#include <gtest/gtest.h>

#include "core/ttmqo_engine.h"
#include "query/parser.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

// A field whose light values live in a narrow high band: the uniform
// assumption badly misestimates selectivities here.
class HighLightField final : public FieldModel {
 public:
  double Sample(NodeId node, const Position&, Attribute attr,
                SimTime time) const override {
    if (attr == Attribute::kNodeId) return node;
    if (attr == Attribute::kLight) {
      return 850.0 + static_cast<double>((node * 13 + time / 2048) % 100);
    }
    return 50.0;
  }
};

TEST(LearnedStatsTest, DistributionConvergesToTheField) {
  const Topology topology = Topology::Grid(4);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  const HighLightField field;
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  options.learn_statistics = true;
  TtmqoEngine engine(network, field, &log, options);

  // An unconstrained acquisition query: every row is an unbiased sample.
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network.sim().RunUntil(10 * 4096);

  PredicateSet low = PredicateSet::Of({{Attribute::kLight, Interval(0, 500)}});
  PredicateSet high =
      PredicateSet::Of({{Attribute::kLight, Interval(800, 1000)}});
  // Uniform prior would say 0.5 and 0.2; the learned distribution knows
  // the truth (0 and ~1).
  EXPECT_LT(engine.selectivity().Selectivity(low), 0.05);
  EXPECT_GT(engine.selectivity().Selectivity(high), 0.9);
}

TEST(LearnedStatsTest, ConstrainedAttributesAreNotLearned) {
  const Topology topology = Topology::Grid(4);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  const HighLightField field;
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  options.learn_statistics = true;
  TtmqoEngine engine(network, field, &log, options);

  // The query filters light > 900: its rows are a biased sample of light,
  // so light must not be learned from them (temp is unconstrained and may).
  engine.SubmitQuery(ParseQuery(
      1, "SELECT light, temp WHERE light > 900 EPOCH DURATION 4096"));
  network.sim().RunUntil(10 * 4096);

  PredicateSet low = PredicateSet::Of({{Attribute::kLight, Interval(0, 500)}});
  // Still the uniform prior (0.5), not the biased near-zero estimate.
  EXPECT_NEAR(engine.selectivity().Selectivity(low), 0.5, 1e-9);
}

TEST(LearnedStatsTest, PerLevelDistributionsAreMaintained) {
  // On a spatially-correlated field, routing levels see different value
  // distributions; with learning on, the per-level estimate departs from
  // the shared one.
  const Topology topology = Topology::Grid(4);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  const auto field = MakeFieldModel(FieldKind::kCorrelated, 1);
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  options.learn_statistics = true;
  TtmqoEngine engine(network, *field, &log, options);
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network.sim().RunUntil(10 * 4096);
  // Every populated level has observations; selectivity per level is
  // well-defined and within [0, 1].
  PredicateSet mid = PredicateSet::Of({{Attribute::kLight, Interval(300, 700)}});
  for (std::size_t level = 1; level <= topology.MaxDepth(); ++level) {
    const double sel = engine.selectivity().Selectivity(mid, level);
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
}

TEST(LearnedStatsTest, OffByDefault) {
  const Topology topology = Topology::Grid(4);
  Network network(topology, RadioParams{}, ChannelParams{}, 1);
  const HighLightField field;
  ResultLog log;
  TtmqoOptions options;
  options.mode = OptimizationMode::kTwoTier;
  TtmqoEngine engine(network, field, &log, options);
  engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
  network.sim().RunUntil(10 * 4096);
  PredicateSet low = PredicateSet::Of({{Attribute::kLight, Interval(0, 500)}});
  EXPECT_NEAR(engine.selectivity().Selectivity(low), 0.5, 1e-9);
}

TEST(LearnedStatsTest, AnswersUnchangedByLearning) {
  // Learning adapts cost estimates, never semantics.
  const Topology topology = Topology::Grid(4);
  const HighLightField field;
  ResultLog with, without;
  for (bool learn : {true, false}) {
    Network network(topology, RadioParams{}, ChannelParams{}, 1);
    TtmqoOptions options;
    options.mode = OptimizationMode::kTwoTier;
    options.learn_statistics = learn;
    TtmqoEngine engine(network, field, learn ? &with : &without, options);
    engine.SubmitQuery(ParseQuery(1, "SELECT light EPOCH DURATION 4096"));
    engine.SubmitQuery(ParseQuery(
        2, "SELECT MAX(light) WHERE light > 860 EPOCH DURATION 8192"));
    network.sim().RunUntil(10 * 4096);
  }
  const std::vector<Query> queries = {
      ParseQuery(1, "SELECT light EPOCH DURATION 4096"),
      ParseQuery(2,
                 "SELECT MAX(light) WHERE light > 860 EPOCH DURATION 8192"),
  };
  const auto diff = CompareResultLogs(without, with, queries);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

}  // namespace
}  // namespace ttmqo
