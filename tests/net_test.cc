// Unit tests for the simulator core, topology, channel and ledger.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/simulator.h"
#include "net/topology.h"

namespace ttmqo {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, EqualTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunUntil(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.RunUntil(1000);
  EXPECT_EQ(fired, 5);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(11, [&] { ++fired; });
  sim.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.RunUntil(10);
  EXPECT_THROW(sim.ScheduleAt(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleAfter(-1, [] {}), std::invalid_argument);
}

TEST(TopologyTest, GridGeometryMatchesThePaper) {
  const Topology t = Topology::Grid(4);  // 20 ft spacing, 50 ft range
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.PositionOf(0), (Position{0, 0}));
  EXPECT_EQ(t.PositionOf(5), (Position{20, 20}));
  // 50 ft range covers offsets (1,0)=20, (1,1)=28.3, (2,0)=40, (2,1)=44.7
  // but not (2,2)=56.6 or (3,0)=60.
  EXPECT_TRUE(t.AreNeighbors(0, 1));
  EXPECT_TRUE(t.AreNeighbors(0, 5));   // diagonal
  EXPECT_TRUE(t.AreNeighbors(0, 2));   // two to the right
  EXPECT_TRUE(t.AreNeighbors(0, 6));   // (2,1)
  EXPECT_FALSE(t.AreNeighbors(0, 10)); // (2,2)
  EXPECT_FALSE(t.AreNeighbors(0, 3));  // (3,0)
}

TEST(TopologyTest, HopLevelsFromTheBaseStation) {
  const Topology t = Topology::Grid(4);
  const auto& levels = t.HopLevels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[6], 1u);
  // Node 15 at (60,60): two hops (e.g. via node 10 at (40,40)? 10 is not a
  // neighbor of 0; via 6 at (40,20)... distance 6->15 = sqrt(40^2+20^2)=44.7
  // so 15 is reachable in 2 hops.
  EXPECT_EQ(levels[15], 2u);
  std::size_t total = 0;
  for (std::size_t n : t.NodesPerLevel()) total += n;
  EXPECT_EQ(total, t.size());
}

TEST(TopologyTest, NeighborSymmetry) {
  const Topology t = Topology::Grid(5);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b : t.NeighborsOf(a)) {
      EXPECT_TRUE(t.AreNeighbors(b, a));
      EXPECT_NE(a, b);
    }
  }
}

TEST(TopologyTest, DisconnectedDeploymentRejected) {
  std::vector<Position> positions = {{0, 0}, {1000, 1000}};
  EXPECT_THROW(Topology(std::move(positions), 50.0), std::invalid_argument);
}

TEST(TopologyTest, RandomUniformIsConnectedAndDeterministic) {
  const Topology a = Topology::RandomUniform(20, 150, 60, 5);
  const Topology b = Topology::RandomUniform(20, 150, 60, 5);
  EXPECT_EQ(a.size(), 20u);
  for (NodeId n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a.PositionOf(n), b.PositionOf(n));
  }
}

TEST(LinkQualityTest, SymmetricAndBounded) {
  const Topology t = Topology::Grid(4);
  const LinkQualityMap q(t, 9);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b : t.NeighborsOf(a)) {
      const double v = q.Quality(a, b);
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, q.Quality(b, a));
    }
  }
  EXPECT_THROW(q.Quality(0, 15), std::invalid_argument);
}

TEST(LinkQualityTest, CloserLinksTendToBeBetter) {
  const Topology t = Topology::Grid(4);
  const LinkQualityMap q(t, 9);
  // Averaged over all edges, 20 ft links beat 44.7 ft links.
  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b : t.NeighborsOf(a)) {
      const double d = Distance(t.PositionOf(a), t.PositionOf(b));
      if (d < 25) {
        near_sum += q.Quality(a, b);
        ++near_n;
      } else if (d > 42) {
        far_sum += q.Quality(a, b);
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_GT(near_sum / near_n, far_sum / far_n);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topology_(Topology::Grid(3)),
        network_(topology_, RadioParams{}, ChannelParams{}, 42) {}

  Topology topology_;
  Network network_;
};

TEST_F(NetworkTest, BroadcastReachesAllAwakeNeighbors) {
  std::vector<NodeId> received;
  for (NodeId n : topology_.AllNodes()) {
    network_.SetReceiver(n, [&received, n](const Message&, bool addressed) {
      if (addressed) received.push_back(n);
    });
  }
  Message msg;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = 4;  // center of the 3x3 grid: everyone is in range
  msg.payload_bytes = 10;
  network_.Send(std::move(msg));
  network_.sim().RunUntil(1000);
  EXPECT_EQ(received.size(), topology_.NeighborsOf(4).size());
}

TEST_F(NetworkTest, UnicastAddressesOnlyTheDestination) {
  int addressed_count = 0, overheard_count = 0;
  for (NodeId n : topology_.AllNodes()) {
    network_.SetReceiver(n, [&](const Message&, bool addressed) {
      (addressed ? addressed_count : overheard_count)++;
    });
  }
  Message msg;
  msg.mode = AddressMode::kUnicast;
  msg.sender = 4;
  msg.destinations = {0};
  msg.payload_bytes = 10;
  network_.Send(std::move(msg));
  network_.sim().RunUntil(1000);
  EXPECT_EQ(addressed_count, 1);
  EXPECT_EQ(overheard_count,
            static_cast<int>(topology_.NeighborsOf(4).size()) - 1);
}

TEST_F(NetworkTest, SendToNonNeighborThrows) {
  const Topology line({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  Network net(line, RadioParams{}, ChannelParams{}, 1);
  Message msg;
  msg.mode = AddressMode::kUnicast;
  msg.sender = 0;
  msg.destinations = {2};  // 80 ft away: out of range
  EXPECT_THROW(net.Send(std::move(msg)), std::invalid_argument);
}

TEST_F(NetworkTest, TransmitTimeChargedToSender) {
  Message msg;
  msg.mode = AddressMode::kBroadcast;
  msg.sender = 4;
  msg.cls = MessageClass::kResult;
  msg.payload_bytes = 13;
  network_.Send(std::move(msg));
  network_.sim().RunUntil(1000);
  const RadioParams radio;
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(4).TotalTransmitMs(),
                   radio.TransmitDurationMs(13));
  EXPECT_EQ(network_.ledger().TotalSent(MessageClass::kResult), 1u);
}

TEST_F(NetworkTest, SendsFromOneNodeSerialize) {
  // Two back-to-back sends: the second starts after the first finishes.
  std::vector<SimTime> deliveries;
  network_.SetReceiver(0, [&](const Message&, bool addressed) {
    if (addressed) deliveries.push_back(network_.sim().Now());
  });
  for (int i = 0; i < 2; ++i) {
    Message msg;
    msg.mode = AddressMode::kUnicast;
    msg.sender = 4;
    msg.destinations = {0};
    msg.payload_bytes = 20;
    network_.Send(std::move(msg));
  }
  network_.sim().RunUntil(1000);
  ASSERT_EQ(deliveries.size(), 2u);
  const RadioParams radio;
  const auto d =
      static_cast<SimTime>(std::ceil(radio.TransmitDurationMs(20)));
  EXPECT_EQ(deliveries[1] - deliveries[0], d);
}

TEST_F(NetworkTest, AsleepNodesReceiveAddressedButNotOverheard) {
  int addressed = 0, overheard = 0;
  network_.SetReceiver(0, [&](const Message&, bool was_addressed) {
    (was_addressed ? addressed : overheard)++;
  });
  network_.SetAsleep(0, true);
  Message unicast;
  unicast.mode = AddressMode::kUnicast;
  unicast.sender = 4;
  unicast.destinations = {0};
  network_.Send(std::move(unicast));
  Message other;
  other.mode = AddressMode::kUnicast;
  other.sender = 4;
  other.destinations = {8};
  network_.Send(std::move(other));
  network_.sim().RunUntil(1000);
  EXPECT_EQ(addressed, 1);  // low-power listening catches addressed traffic
  EXPECT_EQ(overheard, 0);  // but a sleeping radio cannot snoop
}

TEST_F(NetworkTest, SleepTimeIsAccounted) {
  network_.sim().ScheduleAt(100, [&] { network_.SetAsleep(3, true); });
  network_.sim().ScheduleAt(600, [&] { network_.SetAsleep(3, false); });
  network_.sim().RunUntil(1000);
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(3).sleep_ms, 500.0);
}

// Sleep spans used to reach the ledger only on wake-up, so a node still
// asleep when the run ended silently lost its final span and the summary
// under-reported sleep time.  `FinalizeAccounting` closes open spans at
// Now(); these tests pin that contract.
TEST_F(NetworkTest, FinalizeAccountingFlushesOpenSleepSpans) {
  network_.sim().ScheduleAt(200, [&] { network_.SetAsleep(3, true); });
  network_.sim().RunUntil(1000);
  // Still asleep at the end of the run: nothing booked yet.
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(3).sleep_ms, 0.0);
  network_.FinalizeAccounting();
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(3).sleep_ms, 800.0);
}

TEST_F(NetworkTest, FinalizeAccountingIsIdempotent) {
  network_.sim().ScheduleAt(200, [&] { network_.SetAsleep(3, true); });
  network_.sim().RunUntil(1000);
  network_.FinalizeAccounting();
  network_.FinalizeAccounting();
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(3).sleep_ms, 800.0);
}

TEST_F(NetworkTest, AccountingResumesAfterFinalize) {
  // The span reopens at the finalize instant, so a later wake-up accounts
  // only the remainder — no double counting, no lost tail.
  network_.sim().ScheduleAt(200, [&] { network_.SetAsleep(3, true); });
  network_.sim().RunUntil(1000);
  network_.FinalizeAccounting();
  network_.sim().ScheduleAt(1500, [&] { network_.SetAsleep(3, false); });
  network_.sim().RunUntil(2000);
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(3).sleep_ms, 1300.0);
}

TEST_F(NetworkTest, FinalizeAccountingCoversNodesFailedWhileAsleep) {
  // A crash does not close the sleep span (the radio is gone either way),
  // so without finalization the span would never be booked.
  network_.sim().ScheduleAt(100, [&] { network_.SetAsleep(5, true); });
  network_.sim().ScheduleAt(400, [&] { network_.FailNode(5); });
  network_.sim().RunUntil(1000);
  network_.FinalizeAccounting();
  EXPECT_DOUBLE_EQ(network_.ledger().StatsOf(5).sleep_ms, 900.0);
}

TEST(NetworkCollisionTest, CollisionsCauseRetransmissions) {
  const Topology t = Topology::Grid(3);
  ChannelParams channel;
  channel.collision_prob = 0.5;
  Network net(t, RadioParams{}, channel, 7);
  // Fire many concurrent broadcasts from different senders.
  for (NodeId n = 0; n < t.size(); ++n) {
    Message msg;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = n;
    msg.payload_bytes = 24;
    net.Send(std::move(msg));
  }
  net.sim().RunUntil(10'000);
  EXPECT_GT(net.ledger().TotalRetransmissions(), 0u);
}

TEST(NetworkCollisionTest, LosslessChannelNeverRetransmits) {
  const Topology t = Topology::Grid(3);
  Network net(t, RadioParams{}, ChannelParams{}, 7);
  for (NodeId n = 0; n < t.size(); ++n) {
    Message msg;
    msg.mode = AddressMode::kBroadcast;
    msg.sender = n;
    msg.payload_bytes = 24;
    net.Send(std::move(msg));
  }
  net.sim().RunUntil(10'000);
  EXPECT_EQ(net.ledger().TotalRetransmissions(), 0u);
}

TEST(LedgerTest, AverageTransmissionTimeExcludesBaseStation) {
  RadioLedger ledger(3);
  ledger.ChargeTransmit(0, MessageClass::kResult, 500.0, false);
  ledger.ChargeTransmit(1, MessageClass::kResult, 100.0, false);
  ledger.ChargeTransmit(2, MessageClass::kResult, 300.0, false);
  // Sensors 1 and 2 average (100+300)/2 over 1000 ms.
  EXPECT_DOUBLE_EQ(ledger.AverageTransmissionTime(1000), 0.2);
  EXPECT_NEAR(ledger.AverageTransmissionTime(1000, true), 0.3, 1e-12);
}

TEST(LedgerTest, RetransmissionsTrackedSeparately) {
  RadioLedger ledger(2);
  ledger.ChargeTransmit(1, MessageClass::kResult, 10.0, false);
  ledger.ChargeTransmit(1, MessageClass::kResult, 10.0, true);
  EXPECT_EQ(ledger.TotalSent(MessageClass::kResult), 1u);
  EXPECT_EQ(ledger.TotalRetransmissions(), 1u);
  EXPECT_DOUBLE_EQ(ledger.StatsOf(1).TotalTransmitMs(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.StatsOf(1).retransmit_ms, 10.0);
}

TEST(NetworkTest2, MaintenanceBeaconsFlowPeriodically) {
  const Topology t = Topology::Grid(3);
  Network net(t, RadioParams{}, ChannelParams{}, 3);
  net.StartMaintenanceBeacons(1000, 6);
  net.sim().RunUntil(10'000);
  const auto beacons = net.ledger().TotalSent(MessageClass::kMaintenance);
  // 9 nodes, one beacon per second for 10 s (staggered start).
  EXPECT_GE(beacons, 80u);
  EXPECT_LE(beacons, 95u);
}

}  // namespace
}  // namespace ttmqo
