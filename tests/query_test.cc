// Unit tests for predicates, queries and aggregates.
#include <gtest/gtest.h>

#include "query/aggregate.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/query.h"
#include "util/check.h"

namespace ttmqo {
namespace {

Reading MakeReading(NodeId node, double light, double temp) {
  Reading r(node, 2048);
  r.Set(Attribute::kLight, light);
  r.Set(Attribute::kTemp, temp);
  return r;
}

TEST(PredicateTest, MatchRequiresPresence) {
  Predicate p{Attribute::kLight, Interval(100, 200)};
  EXPECT_TRUE(p.Matches(MakeReading(1, 150, 0)));
  EXPECT_FALSE(p.Matches(MakeReading(1, 300, 0)));
  Reading no_light(1, 0);
  EXPECT_FALSE(p.Matches(no_light));
}

TEST(PredicateSetTest, VacuousConstraintsAreDropped) {
  PredicateSet set;
  set.Constrain(Attribute::kLight, AttributeRange(Attribute::kLight));
  EXPECT_TRUE(set.IsUnconstrained());
  set.Constrain(Attribute::kLight, Interval(-100, 2000));
  EXPECT_TRUE(set.IsUnconstrained());
}

TEST(PredicateSetTest, MultipleConstraintsIntersect) {
  PredicateSet set;
  set.Constrain(Attribute::kLight, Interval(100, 600));
  set.Constrain(Attribute::kLight, Interval(280, 900));
  EXPECT_EQ(set.ConstraintOn(Attribute::kLight), Interval(280, 600));
}

TEST(PredicateSetTest, UnsatisfiableDetected) {
  PredicateSet set;
  set.Constrain(Attribute::kLight, Interval(0, 100));
  set.Constrain(Attribute::kLight, Interval(200, 300));
  EXPECT_TRUE(set.IsUnsatisfiable());
}

TEST(PredicateSetTest, MatchesConjunction) {
  PredicateSet set = PredicateSet::Of({
      {Attribute::kLight, Interval(100, 600)},
      {Attribute::kTemp, Interval(20, 40)},
  });
  EXPECT_TRUE(set.Matches(MakeReading(1, 300, 30)));
  EXPECT_FALSE(set.Matches(MakeReading(1, 700, 30)));
  EXPECT_FALSE(set.Matches(MakeReading(1, 300, 50)));
}

TEST(PredicateSetTest, CoversSetOf) {
  PredicateSet wide = PredicateSet::Of({{Attribute::kLight, Interval(0, 800)}});
  PredicateSet narrow =
      PredicateSet::Of({{Attribute::kLight, Interval(100, 600)}});
  PredicateSet none;
  EXPECT_TRUE(wide.CoversSetOf(narrow));
  EXPECT_FALSE(narrow.CoversSetOf(wide));
  EXPECT_TRUE(none.CoversSetOf(wide));   // unconstrained covers everything
  EXPECT_FALSE(wide.CoversSetOf(none));  // but is not covered by a constraint
  EXPECT_TRUE(wide.CoversSetOf(wide));
}

TEST(PredicateSetTest, CoversWithMultipleAttributes) {
  PredicateSet cover = PredicateSet::Of({{Attribute::kLight, Interval(0, 800)}});
  PredicateSet covered = PredicateSet::Of({
      {Attribute::kLight, Interval(100, 600)},
      {Attribute::kTemp, Interval(10, 20)},
  });
  // cover selects a superset: its only constraint is wider, temp free.
  EXPECT_TRUE(cover.CoversSetOf(covered));
  EXPECT_FALSE(covered.CoversSetOf(cover));
}

TEST(PredicateSetTest, IntegrationUnionKeepsOnlyCommonAttributes) {
  PredicateSet a = PredicateSet::Of({
      {Attribute::kLight, Interval(100, 300)},
      {Attribute::kTemp, Interval(10, 20)},
  });
  PredicateSet b = PredicateSet::Of({{Attribute::kLight, Interval(280, 600)}});
  const PredicateSet u = PredicateSet::IntegrationUnion(a, b);
  EXPECT_EQ(u.ConstraintOn(Attribute::kLight), Interval(100, 600));
  EXPECT_FALSE(u.ConstraintOn(Attribute::kTemp).has_value());
}

TEST(PredicateSetTest, IntegrationUnionSelectsSuperset) {
  // Property: any reading matching either input matches the union.
  PredicateSet a = PredicateSet::Of({
      {Attribute::kLight, Interval(100, 300)},
      {Attribute::kTemp, Interval(0, 50)},
  });
  PredicateSet b = PredicateSet::Of({
      {Attribute::kLight, Interval(500, 700)},
  });
  const PredicateSet u = PredicateSet::IntegrationUnion(a, b);
  for (double light : {100.0, 200.0, 300.0, 500.0, 600.0, 700.0}) {
    for (double temp : {0.0, 25.0, 50.0, 80.0}) {
      const Reading r = MakeReading(1, light, temp);
      if (a.Matches(r) || b.Matches(r)) {
        EXPECT_TRUE(u.Matches(r))
            << "light=" << light << " temp=" << temp;
      }
    }
  }
}

TEST(QueryTest, AcquisitionAlwaysProjectsNodeId) {
  const Query q = Query::Acquisition(1, {Attribute::kLight}, {}, 4096);
  EXPECT_EQ(q.kind(), QueryKind::kAcquisition);
  ASSERT_EQ(q.attributes().size(), 2u);
  EXPECT_EQ(q.attributes()[0], Attribute::kNodeId);
  EXPECT_EQ(q.attributes()[1], Attribute::kLight);
}

TEST(QueryTest, ValidationRejectsBadInput) {
  EXPECT_THROW(Query::Acquisition(1, {}, {}, 4096), std::invalid_argument);
  EXPECT_THROW(Query::Acquisition(1, {Attribute::kLight}, {}, 1000),
               std::invalid_argument);
  EXPECT_THROW(Query::Aggregation(1, {}, {}, 4096), std::invalid_argument);
}

TEST(QueryTest, AcquiredAttributesIncludePredicateColumns) {
  PredicateSet preds =
      PredicateSet::Of({{Attribute::kTemp, Interval(10, 20)}});
  const Query q = Query::Acquisition(1, {Attribute::kLight}, preds, 4096);
  const auto acquired = q.AcquiredAttributes();
  EXPECT_NE(std::find(acquired.begin(), acquired.end(), Attribute::kTemp),
            acquired.end());
  EXPECT_NE(std::find(acquired.begin(), acquired.end(), Attribute::kLight),
            acquired.end());
}

TEST(QueryTest, AggregationAcquiredAttributes) {
  PredicateSet preds =
      PredicateSet::Of({{Attribute::kLight, Interval(0, 500)}});
  const Query q = Query::Aggregation(
      2, {AggregateSpec{AggregateOp::kMax, Attribute::kTemp}}, preds, 8192);
  const auto acquired = q.AcquiredAttributes();
  EXPECT_NE(std::find(acquired.begin(), acquired.end(), Attribute::kTemp),
            acquired.end());
  EXPECT_NE(std::find(acquired.begin(), acquired.end(), Attribute::kLight),
            acquired.end());
}

TEST(QueryTest, ResultPayloadBytes) {
  const Query acq =
      Query::Acquisition(1, {Attribute::kLight, Attribute::kTemp}, {}, 4096);
  // nodeid + light + temp, 2 bytes each.
  EXPECT_EQ(acq.ResultPayloadBytes(), 6u);
  const Query agg = Query::Aggregation(
      2,
      {AggregateSpec{AggregateOp::kMax, Attribute::kLight},
       AggregateSpec{AggregateOp::kAvg, Attribute::kTemp}},
      {}, 4096);
  EXPECT_EQ(agg.ResultPayloadBytes(), 6u);  // MAX: 2, AVG: 4
}

TEST(QueryTest, ToSqlRoundTripsShape) {
  PredicateSet preds =
      PredicateSet::Of({{Attribute::kLight, Interval(100, 600)}});
  const Query q = Query::Acquisition(3, {Attribute::kLight}, preds, 6144);
  const std::string sql = q.ToSql();
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("light"), std::string::npos);
  EXPECT_NE(sql.find("EPOCH DURATION 6144"), std::string::npos);
}

TEST(QueryTest, PropagationPayloadGrowsWithContent) {
  const Query small = Query::Acquisition(1, {Attribute::kLight}, {}, 4096);
  PredicateSet preds =
      PredicateSet::Of({{Attribute::kLight, Interval(100, 600)}});
  const Query big = Query::Acquisition(
      2, {Attribute::kLight, Attribute::kTemp, Attribute::kHumidity}, preds,
      4096);
  EXPECT_LT(PropagationPayloadBytes(small), PropagationPayloadBytes(big));
}

TEST(AggregateTest, NamesRoundTrip) {
  for (AggregateOp op : {AggregateOp::kMax, AggregateOp::kMin,
                         AggregateOp::kSum, AggregateOp::kAvg,
                         AggregateOp::kCount}) {
    EXPECT_EQ(ParseAggregateOp(AggregateOpName(op)), op);
  }
  EXPECT_FALSE(ParseAggregateOp("MEDIAN").has_value());
}

class PartialAggregateTest : public ::testing::TestWithParam<AggregateOp> {};

TEST_P(PartialAggregateTest, MergeEqualsDirectAccumulation) {
  const AggregateSpec spec{GetParam(), Attribute::kLight};
  const std::vector<double> values = {5, 1, 9, 3, 3, 7, 2};
  // Split the values arbitrarily, merge, and compare with a direct fold.
  PartialAggregate direct(spec);
  for (double v : values) direct.Accumulate(v);
  PartialAggregate left(spec), right(spec);
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 2 == 0 ? left : right).Accumulate(values[i]);
  }
  PartialAggregate merged = left;
  merged.Merge(right);
  ASSERT_EQ(merged.count(), direct.count());
  ASSERT_TRUE(merged.Finalize().has_value());
  EXPECT_DOUBLE_EQ(*merged.Finalize(), *direct.Finalize());
}

TEST_P(PartialAggregateTest, IdentityElementIsNeutral) {
  const AggregateSpec spec{GetParam(), Attribute::kLight};
  PartialAggregate value = PartialAggregate::OfValue(spec, 42.0);
  PartialAggregate merged = value;
  merged.Merge(PartialAggregate(spec));  // merge with identity
  EXPECT_EQ(merged.count(), value.count());
  EXPECT_EQ(merged.Finalize(), value.Finalize());
  PartialAggregate identity(spec);
  identity.Merge(value);  // identity merged with value
  EXPECT_EQ(identity.Finalize(), value.Finalize());
}

INSTANTIATE_TEST_SUITE_P(AllOps, PartialAggregateTest,
                         ::testing::Values(AggregateOp::kMax,
                                           AggregateOp::kMin,
                                           AggregateOp::kSum,
                                           AggregateOp::kAvg,
                                           AggregateOp::kCount,
                                           AggregateOp::kVar));

TEST(PartialAggregateTest, VarianceIsExactAcrossArbitrarySplits) {
  const AggregateSpec spec{AggregateOp::kVar, Attribute::kLight};
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  // Known population variance of this classic sequence is 4.
  for (std::size_t split = 0; split <= values.size(); ++split) {
    PartialAggregate left(spec), right(spec);
    for (std::size_t i = 0; i < values.size(); ++i) {
      (i < split ? left : right).Accumulate(values[i]);
    }
    left.Merge(right);
    ASSERT_TRUE(left.Finalize().has_value());
    EXPECT_NEAR(*left.Finalize(), 4.0, 1e-9) << "split at " << split;
  }
}

TEST(PartialAggregateTest, VarianceOfConstantIsZero) {
  const AggregateSpec spec{AggregateOp::kVar, Attribute::kTemp};
  PartialAggregate p(spec);
  for (int i = 0; i < 10; ++i) p.Accumulate(42.0);
  EXPECT_NEAR(*p.Finalize(), 0.0, 1e-9);
}

TEST(PartialAggregateTest, EmptySetSemantics) {
  EXPECT_FALSE(PartialAggregate({AggregateOp::kMax, Attribute::kLight})
                   .Finalize()
                   .has_value());
  const auto count =
      PartialAggregate({AggregateOp::kCount, Attribute::kLight}).Finalize();
  ASSERT_TRUE(count.has_value());
  EXPECT_DOUBLE_EQ(*count, 0.0);
}

TEST(PartialAggregateTest, AvgIsExactOverMerges) {
  const AggregateSpec spec{AggregateOp::kAvg, Attribute::kLight};
  PartialAggregate a = PartialAggregate::OfValue(spec, 10.0);
  a.Accumulate(20.0);
  PartialAggregate b = PartialAggregate::OfValue(spec, 40.0);
  a.Merge(b);
  ASSERT_TRUE(a.Finalize().has_value());
  EXPECT_DOUBLE_EQ(*a.Finalize(), (10.0 + 20.0 + 40.0) / 3.0);
}

TEST(PartialAggregateTest, MergeSpecMismatchThrows) {
  PartialAggregate max_light({AggregateOp::kMax, Attribute::kLight});
  PartialAggregate min_light({AggregateOp::kMin, Attribute::kLight});
  EXPECT_THROW(max_light.Merge(min_light), CheckFailure);
}

}  // namespace
}  // namespace ttmqo
