#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <optional>
#include <vector>

namespace ttmqo {
namespace {

enum class TokenKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier (upper-cased) or symbol
  double number = 0.0; // valid for kNumber
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Next() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.offset = pos_;
    if (pos_ >= input_.size()) {
      current_.kind = TokenKind::kEnd;
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokenKind::kIdent;
      current_.text = std::string(input_.substr(start, pos_ - start));
      std::transform(current_.text.begin(), current_.text.end(),
                     current_.text.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
        ((c == '-' || c == '+') && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      std::size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.')) {
        ++pos_;
      }
      current_.kind = TokenKind::kNumber;
      current_.text = std::string(input_.substr(start, pos_ - start));
      try {
        current_.number = std::stod(current_.text);
      } catch (const std::exception&) {
        throw ParseError("malformed number '" + current_.text + "' at offset " +
                         std::to_string(start));
      }
      return;
    }
    // Symbols: <= >= < > = , ( ) *
    if ((c == '<' || c == '>') && pos_ + 1 < input_.size() &&
        input_[pos_ + 1] == '=') {
      current_.kind = TokenKind::kSymbol;
      current_.text = std::string(input_.substr(pos_, 2));
      pos_ += 2;
      return;
    }
    if (c == '<' || c == '>' || c == '=' || c == ',' || c == '(' ||
        c == ')' || c == '*') {
      current_.kind = TokenKind::kSymbol;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }
    throw ParseError(std::string("unexpected character '") + c +
                     "' at offset " + std::to_string(pos_));
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  Parser(QueryId id, std::string_view sql) : id_(id), lexer_(sql) {}

  Query Parse() {
    ExpectKeyword("SELECT");
    ParseSelectList();
    if (PeekKeyword("FROM")) {
      lexer_.Next();
      const Token table = ExpectIdent("table name");
      if (table.text != "SENSORS") {
        throw ParseError("unknown table '" + table.text +
                         "'; only 'sensors' is supported");
      }
    }
    PredicateSet predicates;
    if (PeekKeyword("WHERE")) {
      lexer_.Next();
      predicates = ParseConjunction();
    }
    ExpectKeyword("EPOCH");
    ExpectKeyword("DURATION");
    const Token epoch_tok = Expect(TokenKind::kNumber, "epoch duration (ms)");
    SimDuration lifetime = 0;
    if (PeekKeyword("FOR")) {
      lexer_.Next();
      const Token life_tok = Expect(TokenKind::kNumber, "lifetime (ms)");
      lifetime = static_cast<SimDuration>(life_tok.number);
      if (static_cast<double>(lifetime) != life_tok.number || lifetime <= 0) {
        throw ParseError("FOR expects a positive integral lifetime, got '" +
                         life_tok.text + "'");
      }
    }
    if (lexer_.Peek().kind != TokenKind::kEnd) {
      throw ParseError("trailing input after the query at offset " +
                       std::to_string(lexer_.Peek().offset));
    }
    const auto epoch = static_cast<SimDuration>(epoch_tok.number);
    if (static_cast<double>(epoch) != epoch_tok.number ||
        !IsValidEpochDuration(epoch)) {
      throw ParseError("epoch duration must be a positive multiple of " +
                       std::to_string(kMinEpochDurationMs) + " ms, got '" +
                       epoch_tok.text + "'");
    }
    if (lifetime > 0 && lifetime < epoch) {
      throw ParseError("FOR lifetime must cover at least one epoch");
    }
    if (!attributes_.empty() && !aggregates_.empty()) {
      throw ParseError(
          "a query may project either raw attributes or aggregates, not both");
    }
    Query query =
        !aggregates_.empty()
            ? Query::Aggregation(id_, std::move(aggregates_),
                                 std::move(predicates), epoch)
            : Query::Acquisition(id_, std::move(attributes_),
                                 std::move(predicates), epoch);
    return lifetime > 0 ? query.WithLifetime(lifetime) : query;
  }

 private:
  void ParseSelectList() {
    if (PeekSymbol("*")) {
      lexer_.Next();
      attributes_.assign(kSensedAttributes.begin(), kSensedAttributes.end());
      attributes_.push_back(Attribute::kNodeId);
      return;
    }
    // `SELECT FROM ...` would otherwise surface as "unknown attribute
    // 'FROM'", which misdiagnoses the mistake.
    if (lexer_.Peek().kind == TokenKind::kEnd || PeekKeyword("FROM") ||
        PeekKeyword("WHERE") || PeekKeyword("EPOCH")) {
      throw ParseError("SELECT list must not be empty at offset " +
                       std::to_string(lexer_.Peek().offset));
    }
    while (true) {
      ParseSelectItem();
      if (!PeekSymbol(",")) break;
      lexer_.Next();
    }
  }

  void ParseSelectItem() {
    const Token ident = ExpectIdent("attribute or aggregate");
    if (PeekSymbol("(")) {
      const std::optional<AggregateOp> op = ParseAggregateOp(ident.text);
      if (!op.has_value()) {
        throw ParseError("unknown aggregate '" + ident.text + "' at offset " +
                         std::to_string(ident.offset));
      }
      lexer_.Next();  // '('
      const Token attr_tok = ExpectIdent("attribute");
      ExpectSymbol(")");
      const AggregateSpec spec{*op, RequireAttribute(attr_tok)};
      for (const AggregateSpec& existing : aggregates_) {
        if (existing.op == spec.op && existing.attribute == spec.attribute) {
          throw ParseError("duplicate aggregate '" + spec.ToString() +
                           "' in SELECT list at offset " +
                           std::to_string(ident.offset));
        }
      }
      aggregates_.push_back(spec);
      return;
    }
    const Attribute attr = RequireAttribute(ident);
    if (std::find(attributes_.begin(), attributes_.end(), attr) !=
        attributes_.end()) {
      throw ParseError("duplicate attribute '" + ident.text +
                       "' in SELECT list at offset " +
                       std::to_string(ident.offset));
    }
    attributes_.push_back(attr);
  }

  PredicateSet ParseConjunction() {
    PredicateSet predicates;
    while (true) {
      ParseComparison(predicates);
      if (!PeekKeyword("AND")) break;
      lexer_.Next();
    }
    return predicates;
  }

  void ParseComparison(PredicateSet& predicates) {
    const Token lhs = lexer_.Next();
    if (lhs.kind == TokenKind::kIdent) {
      const Attribute attr = RequireAttribute(lhs);
      if (PeekKeyword("BETWEEN")) {
        lexer_.Next();
        const Token lo = Expect(TokenKind::kNumber, "lower bound");
        ExpectKeyword("AND");
        const Token hi = Expect(TokenKind::kNumber, "upper bound");
        CheckPredicateConstant(attr, lo);
        CheckPredicateConstant(attr, hi);
        predicates.Constrain(attr, Interval(lo.number, hi.number));
        return;
      }
      const Token op = Expect(TokenKind::kSymbol, "comparison operator");
      const Token rhs = Expect(TokenKind::kNumber, "constant");
      CheckPredicateConstant(attr, rhs);
      predicates.Constrain(attr, RangeFor(op.text, rhs.number, attr,
                                          /*attr_on_left=*/true));
      return;
    }
    if (lhs.kind == TokenKind::kNumber) {
      const Token op = Expect(TokenKind::kSymbol, "comparison operator");
      const Token rhs = ExpectIdent("attribute");
      const Attribute attr = RequireAttribute(rhs);
      CheckPredicateConstant(attr, lhs);
      predicates.Constrain(attr, RangeFor(op.text, lhs.number, attr,
                                          /*attr_on_left=*/false));
      return;
    }
    throw ParseError("expected a comparison at offset " +
                     std::to_string(lhs.offset));
  }

  // The interval implied by `attr op value` (or `value op attr` when
  // attr_on_left is false).  Strict and non-strict operators are treated
  // identically over the continuous domains.
  Interval RangeFor(const std::string& op, double value, Attribute attr,
                    bool attr_on_left) {
    const Interval full = AttributeRange(attr);
    const bool less = (op == "<" || op == "<=");
    const bool greater = (op == ">" || op == ">=");
    if (op == "=") return Interval(value, value);
    if (!less && !greater) {
      throw ParseError("unknown comparison operator '" + op + "'");
    }
    const bool upper_bound = attr_on_left ? less : greater;
    return upper_bound ? Interval(full.lo(), value)
                       : Interval(value, full.hi());
  }

  // `nodeid` addresses a physical mote, so a comparison constant that is
  // fractional or outside the address space is a typo, not an empty
  // predicate.  Continuous attributes keep their permissive semantics
  // (an out-of-range bound just clamps the interval).
  void CheckPredicateConstant(Attribute attr, const Token& tok) {
    if (attr != Attribute::kNodeId) return;
    if (static_cast<double>(static_cast<std::int64_t>(tok.number)) !=
        tok.number) {
      throw ParseError("nodeid comparisons expect an integer, got '" +
                       tok.text + "' at offset " + std::to_string(tok.offset));
    }
    const Interval range = AttributeRange(Attribute::kNodeId);
    if (tok.number < range.lo() || tok.number > range.hi()) {
      throw ParseError("nodeid constant " + tok.text + " is outside [" +
                       std::to_string(static_cast<std::int64_t>(range.lo())) +
                       ", " +
                       std::to_string(static_cast<std::int64_t>(range.hi())) +
                       "] at offset " + std::to_string(tok.offset));
    }
  }

  Attribute RequireAttribute(const Token& tok) {
    const std::optional<Attribute> attr = ParseAttribute(tok.text);
    if (!attr.has_value()) {
      throw ParseError("unknown attribute '" + tok.text + "' at offset " +
                       std::to_string(tok.offset));
    }
    return *attr;
  }

  bool PeekKeyword(std::string_view kw) const {
    return lexer_.Peek().kind == TokenKind::kIdent && lexer_.Peek().text == kw;
  }

  bool PeekSymbol(std::string_view s) const {
    return lexer_.Peek().kind == TokenKind::kSymbol && lexer_.Peek().text == s;
  }

  void ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      throw ParseError("expected keyword '" + std::string(kw) +
                       "' at offset " + std::to_string(lexer_.Peek().offset));
    }
    lexer_.Next();
  }

  void ExpectSymbol(std::string_view s) {
    if (!PeekSymbol(s)) {
      throw ParseError("expected '" + std::string(s) + "' at offset " +
                       std::to_string(lexer_.Peek().offset));
    }
    lexer_.Next();
  }

  Token Expect(TokenKind kind, std::string_view what) {
    if (lexer_.Peek().kind != kind) {
      throw ParseError("expected " + std::string(what) + " at offset " +
                       std::to_string(lexer_.Peek().offset));
    }
    return lexer_.Next();
  }

  Token ExpectIdent(std::string_view what) {
    return Expect(TokenKind::kIdent, what);
  }

  QueryId id_;
  Lexer lexer_;
  std::vector<Attribute> attributes_;
  std::vector<AggregateSpec> aggregates_;
};

}  // namespace

Query ParseQuery(QueryId id, std::string_view sql) {
  return Parser(id, sql).Parse();
}

}  // namespace ttmqo
