#include "net/observer.h"

#include <algorithm>

namespace ttmqo {

void ObserverMux::Add(NetworkObserver* observer) {
  if (observer == nullptr || observer == this) return;
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observers_.push_back(observer);
}

bool ObserverMux::Remove(NetworkObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it == observers_.end()) return false;
  observers_.erase(it);
  return true;
}

void ObserverMux::OnTransmit(SimTime time, const Message& msg,
                             double duration_ms, bool retransmission) {
  for (NetworkObserver* o : observers_) {
    o->OnTransmit(time, msg, duration_ms, retransmission);
  }
}

void ObserverMux::OnDrop(SimTime time, const Message& msg) {
  for (NetworkObserver* o : observers_) o->OnDrop(time, msg);
}

void ObserverMux::OnSleepChange(SimTime time, NodeId node, bool asleep) {
  for (NetworkObserver* o : observers_) o->OnSleepChange(time, node, asleep);
}

void ObserverMux::OnNodeFailed(SimTime time, NodeId node) {
  for (NetworkObserver* o : observers_) o->OnNodeFailed(time, node);
}

void ObserverMux::OnNodeDown(SimTime time, NodeId node) {
  for (NetworkObserver* o : observers_) o->OnNodeDown(time, node);
}

void ObserverMux::OnNodeRecovered(SimTime time, NodeId node,
                                  SimDuration down_ms) {
  for (NetworkObserver* o : observers_) o->OnNodeRecovered(time, node, down_ms);
}

void ObserverMux::OnLinkDrop(SimTime time, const Message& msg,
                             NodeId receiver) {
  for (NetworkObserver* o : observers_) o->OnLinkDrop(time, msg, receiver);
}

}  // namespace ttmqo
