#include "core/bs/integration.h"

#include <algorithm>

#include "util/check.h"
#include "util/mathx.h"

namespace ttmqo {
namespace {

bool AllAggregationSamePredicates(std::span<const Query> members) {
  for (const Query& q : members) {
    if (q.kind() != QueryKind::kAggregation) return false;
    if (!(q.predicates() == members.front().predicates())) return false;
  }
  return true;
}

}  // namespace

bool IsRewritable(const Query& a, const Query& b) {
  if (a.kind() == QueryKind::kAggregation &&
      b.kind() == QueryKind::kAggregation) {
    // Aggregation pairs need identical predicates; otherwise neither stream
    // can be derived from a merged aggregate (Section 3.1.2).
    return a.predicates() == b.predicates();
  }
  return true;
}

bool Covers(const Query& cover, const Query& covered) {
  // Every epoch of `covered` must coincide with an epoch of `cover`.
  if (!Divides(cover.epoch(), covered.epoch())) return false;
  // The cover must report a superset of the matching readings.
  if (!cover.predicates().CoversSetOf(covered.predicates())) return false;

  if (cover.kind() == QueryKind::kAcquisition) {
    // Raw rows can answer anything, provided every needed column is there.
    const auto& have = cover.attributes();
    for (Attribute attr : covered.AcquiredAttributes()) {
      if (!std::binary_search(have.begin(), have.end(), attr)) return false;
    }
    return true;
  }
  // An aggregation stream can only answer an aggregation subset with the
  // exact same predicates (otherwise the aggregate is over the wrong rows).
  if (covered.kind() != QueryKind::kAggregation) return false;
  if (!(cover.predicates() == covered.predicates())) return false;
  const auto& have = cover.aggregates();
  for (const AggregateSpec& spec : covered.aggregates()) {
    if (!std::binary_search(have.begin(), have.end(), spec)) return false;
  }
  return true;
}

Query BuildNetworkQuery(QueryId id, std::span<const Query> members) {
  CheckArg(!members.empty(), "BuildNetworkQuery: members must be non-empty");

  SimDuration epoch = 0;
  for (const Query& q : members) epoch = std::gcd(epoch, q.epoch());

  if (AllAggregationSamePredicates(members)) {
    std::vector<AggregateSpec> aggs;
    for (const Query& q : members) {
      aggs.insert(aggs.end(), q.aggregates().begin(), q.aggregates().end());
    }
    return Query::Aggregation(id, std::move(aggs),
                              members.front().predicates(), epoch);
  }

  // Mixed or acquisition-only: one acquisition query acquiring everything
  // any member needs, with the integration-union of the predicates.
  std::vector<Attribute> attrs;
  for (const Query& q : members) {
    const auto acquired = q.AcquiredAttributes();
    attrs.insert(attrs.end(), acquired.begin(), acquired.end());
  }
  PredicateSet predicates = members.front().predicates();
  for (std::size_t i = 1; i < members.size(); ++i) {
    predicates =
        PredicateSet::IntegrationUnion(predicates, members[i].predicates());
  }
  return Query::Acquisition(id, std::move(attrs), std::move(predicates),
                            epoch);
}

std::optional<Query> Integrate(QueryId id, const Query& base,
                               const Query& q) {
  if (!IsRewritable(base, q)) return std::nullopt;
  const Query members[] = {base, q};
  return BuildNetworkQuery(id, members);
}

}  // namespace ttmqo
