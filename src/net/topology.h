// Node placement and radio connectivity.
//
// The paper deploys nodes on an n×n grid with 20 ft spacing and a 50 ft
// radio radius, base station at the upper-left corner as node 0 (Section
// 4.1).  `Topology` stores positions and the derived symmetric neighbor
// relation; hop levels (minimum hop count from the base station) are
// computed by BFS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/geometry.h"
#include "util/ids.h"

namespace ttmqo {

/// Interference reaches beyond communication: a transmission can corrupt
/// receptions up to twice the radio range away (the classic two-disc
/// model the channel's contention accounting uses).
inline constexpr double kInterferenceRangeFactor = 2.0;

/// An immutable deployment: positions plus radio connectivity.
class Topology {
 public:
  /// Builds a topology from explicit positions.  `positions[i]` is node i's
  /// location; node 0 is the base station.  Two distinct nodes are
  /// neighbors iff their distance is at most `range_feet`.  Throws if any
  /// node is unreachable from the base station.
  Topology(std::vector<Position> positions, double range_feet);

  /// The paper's grid: `side`×`side` nodes, `spacing_feet` apart, node 0 at
  /// the upper-left corner.
  static Topology Grid(std::size_t side, double spacing_feet = 20.0,
                       double range_feet = 50.0);

  /// Uniform-random deployment in a square of the given side, with the base
  /// station at the corner.  Retries until connected (deterministic in
  /// seed).
  static Topology RandomUniform(std::size_t num_nodes, double side_feet,
                                double range_feet, std::uint64_t seed);

  /// Number of nodes (including the base station).
  std::size_t size() const { return positions_.size(); }

  /// Position of a node.
  const Position& PositionOf(NodeId node) const;

  /// Radio range in feet.
  double range_feet() const { return range_feet_; }

  /// Neighbors of `node` (symmetric, excludes the node itself), ascending.
  const std::vector<NodeId>& NeighborsOf(NodeId node) const;

  /// True iff `a` and `b` are within radio range (and distinct).
  bool AreNeighbors(NodeId a, NodeId b) const;

  /// Nodes within `kInterferenceRangeFactor * range_feet` of `node`
  /// (excluding the node itself), ascending.  Precomputed once and stored
  /// in CSR form, so the channel never re-derives interference geometry.
  std::span<const NodeId> InterferersOf(NodeId node) const;

  /// True iff `a`'s transmissions can interfere with `b`'s (distinct nodes
  /// within the interference range).  O(1) bitset membership test with no
  /// bounds checks — callers pass validated node ids.
  bool InInterferenceRange(NodeId a, NodeId b) const {
    return (interference_bits_[static_cast<std::size_t>(a) * bits_stride_ +
                               (static_cast<std::size_t>(b) >> 6)] >>
            (static_cast<std::size_t>(b) & 63)) &
           1u;
  }

  /// Minimum hop count from the base station (level 0) per node.
  const std::vector<std::size_t>& HopLevels() const { return levels_; }

  /// The largest hop level in the deployment (`max_depth` of Eq. 2).
  std::size_t MaxDepth() const { return max_depth_; }

  /// Number of nodes at each hop level; index = level.  `|N_k|` of Eq. 1.
  const std::vector<std::size_t>& NodesPerLevel() const {
    return nodes_per_level_;
  }

  /// All node ids, 0..size-1.
  std::vector<NodeId> AllNodes() const;

 private:
  std::vector<Position> positions_;
  double range_feet_;
  std::vector<std::vector<NodeId>> neighbors_;
  /// Interference adjacency, flattened to CSR (offsets + flat id list)
  /// plus a row-per-node bitset for O(1) membership tests.
  std::vector<std::uint32_t> interference_offsets_;
  std::vector<NodeId> interference_flat_;
  std::vector<std::uint64_t> interference_bits_;
  std::size_t bits_stride_ = 0;
  std::vector<std::size_t> levels_;
  std::vector<std::size_t> nodes_per_level_;
  std::size_t max_depth_ = 0;
};

}  // namespace ttmqo
