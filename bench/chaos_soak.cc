// Chaos soak harness (robustness extension; the paper defers failures to
// future work, Section 5).  Draws a seed-deterministic random fault plan —
// transient outages on up to --down-frac of the sensors plus optional
// uniform link loss — and runs the TinyDB baseline plus the two-tier
// scheme under every reliability profile (off / harden / arq) under the
// *same* plan, checking reliability invariants on every run:
//
//   1. no duplicate rows: the base station never reports one node twice in
//      one (query, epoch) answer;
//   2. accounting conservation: per-class message counts (including the
//      ARQ/repair control class) sum to the total and every scheduled
//      outage both begins and recovers;
//   3. completeness floors: the hardened profiles deliver at least --floor
//      of the oracle-expected rows despite the chaos, and the arq profile
//      averages at least --arq-floor;
//   4. coverage annotation: the arq profile stamps a coverage fraction on
//      every epoch result (a non-full epoch must never pass silently);
//   5. no spurious link drops when no loss was injected.
//
// Exits non-zero on the first violated invariant, so the soak can gate CI.
//
// Usage: chaos_soak [--side=6] [--seed=7] [--runs=3] [--epochs=24]
//                   [--outages=6] [--down-frac=0.2] [--link-loss=0.0]
//                   [--floor=0.5] [--arq-floor=0.99] [--batch-seeds=1]
//                   [--postmortem-dir=DIR]
//                   [--bench-out=BENCH_reliability.json]
//
// --batch-seeds=N runs each cell's seeds through one lockstep batched
// event loop, N lanes at a time (DESIGN.md note 21).  Results — and hence
// every invariant verdict — are byte-identical to the serial path; the
// soak just finishes sooner.
//
// With --bench-out the soak instead sweeps a link-loss axis across the
// three profiles (single seed, same outage plan) and writes the delivery-
// completeness / coverage / message-overhead matrix as a deterministic
// JSON artifact — the data behind the EXPERIMENTS.md reliability figure.
//
// With --postmortem-dir the flight recorder is armed; every violated
// invariant (and any fatal signal) dumps the last simulator events, fault
// transitions, and engine decisions to a postmortem JSON in DIR — the
// artifact CI attaches when the soak gate fails.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "metrics/table.h"
#include "metrics/trace.h"
#include "obs/flight_recorder.h"
#include "obs/session.h"
#include "query/parser.h"
#include "util/flags.h"
#include "workload/runner.h"

namespace ttmqo {
namespace {

constexpr SimDuration kEpoch = 4096;

/// Rows reported twice for one node in one (query, epoch) answer.
std::size_t DuplicateRows(const ResultLog& log) {
  std::size_t duplicates = 0;
  for (const EpochResult* r : log.All()) {
    std::map<NodeId, int> seen;
    for (const Reading& row : r->rows) {
      if (++seen[row.node()] > 1) ++duplicates;
    }
  }
  return duplicates;
}

/// Epoch results the engine failed to stamp with a coverage fraction.
std::size_t UnannotatedEpochs(const ResultLog& log) {
  std::size_t unannotated = 0;
  for (const EpochResult* r : log.All()) {
    if (r->coverage < 0.0) ++unannotated;
  }
  return unannotated;
}

struct SoakOutcome {
  RunResult run;
  CountingObserver counts;
};

struct Cell {
  OptimizationMode mode = OptimizationMode::kTwoTier;
  ReliabilityProfile reliability = ReliabilityProfile::kOff;
};

SoakOutcome RunCell(const Cell& cell, std::size_t side, SimDuration duration,
                    std::uint64_t seed, const FaultPlan& plan,
                    const std::vector<WorkloadEvent>& schedule) {
  SoakOutcome outcome;
  RunConfig config;
  config.grid_side = side;
  config.mode = cell.mode;
  config.duration_ms = duration;
  config.seed = seed;
  config.faults = plan;
  config.reliability = cell.reliability;
  config.obs.observers.push_back(&outcome.counts);
  outcome.run = RunExperiment(config, schedule);
  return outcome;
}

int WriteBenchArtifact(const std::string& path, std::size_t side,
                       SimDuration duration, std::uint64_t seed,
                       const RandomFaultParams& base_params,
                       const std::vector<WorkloadEvent>& schedule) {
  // The figure's axes: delivery completeness (and its cost in messages)
  // vs link loss, one curve per reliability profile, identical outage
  // plan and workload per loss level so profiles compare like-for-like.
  const double losses[] = {0.0, 0.05, 0.1, 0.2};
  const ReliabilityProfile profiles[] = {ReliabilityProfile::kOff,
                                         ReliabilityProfile::kHarden,
                                         ReliabilityProfile::kArq};
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open bench output: %s\n", path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"reliability\",\n";
  out << "  \"grid_side\": " << side << ",\n";
  out << "  \"duration_ms\": " << duration << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"cells\": [\n";
  char buf[512];
  bool first = true;
  for (const double loss : losses) {
    RandomFaultParams params = base_params;
    params.link_loss = loss;
    const FaultPlan plan =
        FaultPlan::RandomTransient(params, side * side, duration, seed);
    std::uint64_t off_messages = 0;
    for (const ReliabilityProfile profile : profiles) {
      const SoakOutcome outcome = RunCell({OptimizationMode::kTwoTier, profile},
                                          side, duration, seed, plan, schedule);
      const RunSummary& s = outcome.run.summary;
      if (profile == ReliabilityProfile::kOff) off_messages = s.total_messages;
      const double overhead =
          off_messages == 0 ? 1.0
                            : static_cast<double>(s.total_messages) /
                                  static_cast<double>(off_messages);
      std::snprintf(buf, sizeof(buf),
                    "%s    {\"link_loss\": %.2f, \"reliability\": \"%s\", "
                    "\"delivery_avg\": %.4f, \"delivery_min\": %.4f, "
                    "\"coverage_avg\": %.4f, \"messages\": %llu, "
                    "\"control_msgs\": %llu, \"overhead_x\": %.3f}",
                    first ? "" : ",\n", loss,
                    ReliabilityProfileName(profile).data(),
                    s.AvgDeliveryCompleteness(), s.MinDeliveryCompleteness(),
                    s.coverage.empty() ? -1.0 : s.AvgCoverage(),
                    static_cast<unsigned long long>(s.total_messages),
                    static_cast<unsigned long long>(s.control_messages),
                    overhead);
      out << buf;
      first = false;
      std::printf("bench: loss=%.2f %s delivery=%.1f%% messages=%llu\n",
                  loss, ReliabilityProfileName(profile).data(),
                  s.AvgDeliveryCompleteness() * 100,
                  static_cast<unsigned long long>(s.total_messages));
    }
  }
  out << "\n  ]\n}\n";
  std::printf("wrote reliability bench artifact to %s\n", path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const auto side = static_cast<std::size_t>(flags.GetInt("side", 6));
  const auto first_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const auto runs = static_cast<std::uint64_t>(flags.GetInt("runs", 3));
  const auto epochs = flags.GetInt("epochs", 24);
  RandomFaultParams params;
  params.max_outages = static_cast<std::size_t>(flags.GetInt("outages", 6));
  params.max_down_fraction = flags.GetDouble("down-frac", 0.2);
  params.link_loss = flags.GetDouble("link-loss", 0.0);
  const double floor = flags.GetDouble("floor", 0.5);
  const double arq_floor = flags.GetDouble("arq-floor", 0.99);
  const auto batch_seeds =
      static_cast<std::size_t>(flags.GetInt("batch-seeds", 1));
  const auto bench_out = flags.GetOptional("bench-out");
  obs::ObsSession obs_session(obs::ObsSession::FromFlags(flags));
  if (ReportUnreadFlags(flags)) return 2;

  const SimDuration duration = epochs * kEpoch;
  const auto schedule = StaticSchedule(
      {ParseQuery(1, "SELECT light WHERE light > 400 EPOCH DURATION 4096"),
       ParseQuery(2, "SELECT MAX(temp) EPOCH DURATION 8192")});

  if (bench_out.has_value()) {
    return WriteBenchArtifact(*bench_out, side, duration, first_seed, params,
                              schedule);
  }

  std::printf("Chaos soak: %zux%zu grid, %lld ms, <=%zu outages "
              "(<=%.0f%% of sensors), link loss %.2f, %llu seed(s)\n\n",
              side, side, static_cast<long long>(duration),
              params.max_outages, params.max_down_fraction * 100,
              params.link_loss, static_cast<unsigned long long>(runs));

  TablePrinter table({"seed", "outages", "mode", "rel", "completeness %",
                      "coverage %", "dup rows", "link drops", "messages"});
  int violations = 0;
  const auto violate = [&violations](const char* what, std::uint64_t seed) {
    std::fprintf(stderr, "INVARIANT VIOLATED (seed %llu): %s\n",
                 static_cast<unsigned long long>(seed), what);
    // With --postmortem-dir set, preserve the events leading up to the
    // violation (the simulator is torn down before we get here, so the
    // thread ring still holds this run's tail).
    const std::string dump = obs::DumpPostmortem(what);
    if (!dump.empty()) {
      std::fprintf(stderr, "postmortem written to %s\n", dump.c_str());
    }
    ++violations;
  };

  const Cell cells[] = {
      {OptimizationMode::kBaseline, ReliabilityProfile::kOff},
      {OptimizationMode::kTwoTier, ReliabilityProfile::kOff},
      {OptimizationMode::kTwoTier, ReliabilityProfile::kHarden},
      {OptimizationMode::kTwoTier, ReliabilityProfile::kArq},
  };
  const std::size_t num_cells = std::size(cells);

  // Soak outcomes keyed [seed_index][cell_index].  With --batch-seeds=N
  // each cell's seeds run through one lockstep batched event loop, N lanes
  // at a time; the batch contract makes every stored run — and hence every
  // invariant verdict below — byte-identical to the serial path.
  std::vector<FaultPlan> plans;
  plans.reserve(runs);
  for (std::uint64_t r = 0; r < runs; ++r) {
    plans.push_back(FaultPlan::RandomTransient(params, side * side, duration,
                                               first_seed + r));
  }
  std::vector<std::vector<SoakOutcome>> outcomes(runs);
  for (auto& row : outcomes) row.resize(num_cells);
  if (batch_seeds <= 1) {
    for (std::uint64_t r = 0; r < runs; ++r) {
      for (std::size_t c = 0; c < num_cells; ++c) {
        outcomes[r][c] = RunCell(cells[c], side, duration, first_seed + r,
                                 plans[r], schedule);
      }
    }
  } else {
    for (std::size_t c = 0; c < num_cells; ++c) {
      for (std::uint64_t begin = 0; begin < runs; begin += batch_seeds) {
        const auto lanes = static_cast<std::uint64_t>(
            std::min<std::uint64_t>(batch_seeds, runs - begin));
        std::vector<RunConfig> configs;
        std::vector<std::vector<WorkloadEvent>> schedules;
        configs.reserve(lanes);
        schedules.reserve(lanes);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const std::uint64_t r = begin + l;
          RunConfig config;
          config.grid_side = side;
          config.mode = cells[c].mode;
          config.duration_ms = duration;
          config.seed = first_seed + r;
          config.faults = plans[r];
          config.reliability = cells[c].reliability;
          config.obs.observers.push_back(&outcomes[r][c].counts);
          configs.push_back(std::move(config));
          schedules.push_back(schedule);
        }
        std::vector<RunResult> batch = RunExperimentBatch(configs, schedules);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          outcomes[begin + l][c].run = std::move(batch[l]);
        }
      }
    }
  }

  for (std::uint64_t seed = first_seed; seed < first_seed + runs; ++seed) {
    const FaultPlan& plan = plans[seed - first_seed];

    for (std::size_t c = 0; c < num_cells; ++c) {
      const Cell& cell = cells[c];
      const SoakOutcome& outcome = outcomes[seed - first_seed][c];
      const RunResult& run = outcome.run;
      const CountingObserver& counts = outcome.counts;
      const bool arq = cell.reliability == ReliabilityProfile::kArq;
      const std::size_t duplicates = DuplicateRows(run.results);
      if (duplicates > 0) violate("duplicate rows at the base station", seed);
      const std::uint64_t by_class =
          run.summary.result_messages + run.summary.propagation_messages +
          run.summary.abort_messages + run.summary.maintenance_messages +
          run.summary.control_messages;
      if (by_class != run.summary.total_messages) {
        violate("per-class message counts do not sum to the total", seed);
      }
      if (counts.downs != plan.outages().size()) {
        violate("an outage never began", seed);
      }
      if (counts.recoveries != counts.downs) {
        violate("an outage never recovered", seed);
      }
      if (params.link_loss == 0.0 && counts.link_drops != 0) {
        violate("link drops without injected loss", seed);
      }
      if (cell.mode == OptimizationMode::kTwoTier &&
          cell.reliability != ReliabilityProfile::kOff &&
          run.summary.MinDeliveryCompleteness() < floor) {
        violate("hardened completeness below the floor", seed);
      }
      if (arq) {
        if (run.summary.AvgDeliveryCompleteness() < arq_floor) {
          violate("arq average completeness below the arq floor", seed);
        }
        if (UnannotatedEpochs(run.results) > 0) {
          violate("arq epoch result without coverage annotation", seed);
        }
      }

      table.AddRow({std::to_string(seed),
                    std::to_string(plan.outages().size()),
                    std::string(OptimizationModeName(cell.mode)),
                    std::string(ReliabilityProfileName(cell.reliability)),
                    TablePrinter::Num(
                        run.summary.AvgDeliveryCompleteness() * 100, 1),
                    run.summary.coverage.empty()
                        ? "-"
                        : TablePrinter::Num(run.summary.AvgCoverage() * 100,
                                            1),
                    std::to_string(duplicates),
                    std::to_string(counts.link_drops),
                    std::to_string(run.summary.total_messages)});
    }
  }
  table.Print(std::cout);
  if (violations > 0) {
    std::fprintf(stderr, "\n%d invariant violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall invariants held across %llu seed(s)\n",
              static_cast<unsigned long long>(runs));
  return 0;
}

}  // namespace
}  // namespace ttmqo

int main(int argc, char** argv) { return ttmqo::Main(argc, argv); }
