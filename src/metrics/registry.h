// A process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, with Prometheus-style labels and JSON / Prometheus text
// exposition.
//
// Instruments are created on first use and live as long as the registry;
// the returned references stay valid across further registrations.  All
// operations are thread-safe: instrument lookup takes the registry mutex,
// and updates use atomics (counters/gauges) or a per-histogram mutex, so
// hot paths touching a cached instrument reference never contend on the
// registry.
//
// Metric names follow Prometheus conventions (snake_case, `_total` suffix
// on counters); labels keep cardinality bounded (node ids, message
// classes, run modes — never query ids of unbounded workloads).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ttmqo {

/// Label set of one instrument instance, e.g. {{"node","3"},{"class","result"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing value.
class Counter {
 public:
  /// Adds `delta` (must be >= 0; negative deltas are clamped to 0).
  void Add(double delta);
  void Increment() { Add(1.0); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A value that can go up and down.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram with cumulative Prometheus semantics: bucket i
/// counts observations <= upper_bounds[i]; an implicit +Inf bucket catches
/// the rest.
class HistogramMetric {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit HistogramMetric(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Upper bounds, excluding the implicit +Inf bucket.
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == upper_bounds().size() + 1,
  /// the last entry being the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t Count() const;
  double Sum() const;

 private:
  std::vector<double> upper_bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The registry.  Instruments are identified by (name, labels); requesting
/// the same identity twice returns the same instrument.  Registering one
/// name as two different instrument types throws `std::invalid_argument`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels = {});
  /// `upper_bounds` is used on first registration of (name, labels) and
  /// must match on later calls.
  HistogramMetric& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds,
                          const MetricLabels& labels = {});

  /// Number of registered instrument instances.
  std::size_t size() const;

  /// JSON object: {"counters":{"name{k=\"v\"}":value,...},
  /// "gauges":{...},"histograms":{"name{...}":{"sum":s,"count":n,
  /// "buckets":[{"le":b,"count":c},...]}}}.  Keys are sorted; the document
  /// is self-contained and parseable.
  void WriteJson(std::ostream& out) const;

  /// Prometheus text exposition format (one "# TYPE" line per metric name).
  void WritePrometheus(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  /// "name{k=\"v\",...}" (or just "name" without labels); label order is
  /// normalized by sorting keys so identical sets always collide.
  static std::string InstrumentKey(const std::string& name,
                                   const MetricLabels& labels);

  Instrument& GetOrCreate(const std::string& name, const MetricLabels& labels,
                          Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace ttmqo
