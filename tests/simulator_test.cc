// Pins the `Simulator` contract the engines and golden runs depend on, so
// event-queue rewrites (the pooled slab + hand-rolled heap) cannot silently
// change ordering, boundary, or counting semantics:
//   - total order: (time, scheduling sequence), FIFO within equal times
//   - RunUntil boundary: events at exactly `until` run; Now() lands on it
//   - pending()/events_executed() bookkeeping
//   - scheduling from inside handlers (including at the current instant)
//   - move-only and larger-than-inline captures work; hot-path captures
//     stay inline (allocation-free)
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/simulator.h"
#include "util/rng.h"

namespace ttmqo {
namespace {

TEST(SimulatorSemanticsTest, EqualTimeEventsInterleavedWithLaterOnes) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(20, [&] { order.push_back(200); });
  sim.ScheduleAt(10, [&] { order.push_back(100); });
  sim.ScheduleAt(10, [&] { order.push_back(101); });
  sim.ScheduleAt(20, [&] { order.push_back(201); });
  sim.ScheduleAt(10, [&] { order.push_back(102); });
  sim.RunUntil(30);
  EXPECT_EQ(order, (std::vector<int>{100, 101, 102, 200, 201}));
}

TEST(SimulatorSemanticsTest, ManySameTimeEventsKeepSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    sim.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  sim.RunUntil(42);
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulatorSemanticsTest, RandomScheduleFiresInStableSortedOrder) {
  // A randomized schedule with many ties must fire sorted by time and,
  // within a time, by scheduling order (stable sort of the input).
  Simulator sim;
  Rng rng(7);
  std::vector<std::pair<SimTime, int>> scheduled;
  std::vector<std::pair<SimTime, int>> fired;
  for (int i = 0; i < 500; ++i) {
    const auto t = static_cast<SimTime>(rng.UniformInt(0, 49));
    scheduled.emplace_back(t, i);
    sim.ScheduleAt(t, [&fired, t, i] { fired.emplace_back(t, i); });
  }
  sim.RunUntil(50);
  std::stable_sort(
      scheduled.begin(), scheduled.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(fired, scheduled);
}

TEST(SimulatorSemanticsTest, RunUntilBoundaryIsInclusiveAndLandsOnUntil) {
  Simulator sim;
  std::vector<SimTime> at;
  sim.ScheduleAt(5, [&] { at.push_back(sim.Now()); });
  sim.ScheduleAt(10, [&] { at.push_back(sim.Now()); });
  sim.ScheduleAt(11, [&] { at.push_back(sim.Now()); });
  sim.RunUntil(10);
  // Events at exactly `until` run, later ones wait, Now() == until.
  EXPECT_EQ(at, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(sim.Now(), 10);
  EXPECT_EQ(sim.pending(), 1u);
  // An empty RunUntil still advances the clock.
  sim.RunUntil(10);
  EXPECT_EQ(sim.Now(), 10);
  sim.RunUntil(100);
  EXPECT_EQ(at, (std::vector<SimTime>{5, 10, 11}));
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorSemanticsTest, PendingAndExecutedCounts) {
  Simulator sim;
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
  for (int i = 0; i < 5; ++i) sim.ScheduleAt(i * 10, [] {});
  EXPECT_EQ(sim.pending(), 5u);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(sim.pending(), 4u);
  EXPECT_EQ(sim.events_executed(), 1u);
  sim.RunUntil(100);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 5u);
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorSemanticsTest, HandlersScheduleAtTheCurrentInstant) {
  // An event scheduled at Now() from inside a handler fires in the same
  // RunUntil pass, after every previously scheduled event at that time.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(5, [&] {
    order.push_back(0);
    sim.ScheduleAfter(0, [&] { order.push_back(2); });
  });
  sim.ScheduleAt(5, [&] { order.push_back(1); });
  sim.RunUntil(5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorSemanticsTest, HandlersScheduleBeyondTheBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(5, [&] {
    ++fired;
    sim.ScheduleAt(20, [&] { ++fired; });  // beyond `until`: must wait
  });
  sim.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorSemanticsTest, DeepReschedulingChainReusesTheSlab) {
  // A self-rescheduling chain (the beacon/sampler pattern) runs through
  // pooled slots; the queue never grows beyond the live event count.
  Simulator sim;
  int fired = 0;
  struct Chain {
    Simulator& sim;
    int& fired;
    void Tick() {
      if (++fired < 1000) sim.ScheduleAfter(1, [this] { Tick(); });
    }
  };
  Chain chain{sim, fired};
  sim.ScheduleAt(0, [&chain] { chain.Tick(); });
  sim.RunUntil(2000);
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorSemanticsTest, MoveOnlyCapturesAreSupported) {
  Simulator sim;
  auto value = std::make_unique<int>(99);
  int seen = 0;
  sim.ScheduleAt(1, [v = std::move(value), &seen] { seen = *v; });
  sim.RunUntil(1);
  EXPECT_EQ(seen, 99);
}

TEST(SimulatorSemanticsTest, LargeCapturesFallBackToTheHeapAndStillFire) {
  Simulator sim;
  std::array<std::uint64_t, 64> big{};  // 512 bytes: far beyond inline
  big[63] = 7;
  static_assert(!Simulator::EventFn::kFitsInline<decltype([big] {})>);
  std::uint64_t seen = 0;
  sim.ScheduleAt(1, [big, &seen] { seen = big[63]; });
  sim.RunUntil(1);
  EXPECT_EQ(seen, 7u);
}

TEST(SimulatorSemanticsTest, SmallCapturesStayInline) {
  struct Probe {
    void* a;
    std::uint64_t b;
  };
  static_assert(Simulator::EventFn::kFitsInline<decltype([p = Probe{}] {})>);
  Simulator::EventFn fn = [] {};
  EXPECT_TRUE(fn.is_inline());
}

TEST(SimulatorSemanticsTest, SchedulingInThePastStillThrows) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.RunUntil(10);
  EXPECT_THROW(sim.ScheduleAt(9, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleAfter(-1, [] {}), std::invalid_argument);
  // Scheduling at exactly Now() stays legal.
  sim.ScheduleAt(10, [] {});
  EXPECT_EQ(sim.pending(), 1u);
}

}  // namespace
}  // namespace ttmqo
