file(REMOVE_RECURSE
  "libttmqo_workload.a"
)
