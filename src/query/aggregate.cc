#include "query/aggregate.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/check.h"

namespace ttmqo {

std::string_view AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kMax:
      return "MAX";
    case AggregateOp::kMin:
      return "MIN";
    case AggregateOp::kSum:
      return "SUM";
    case AggregateOp::kAvg:
      return "AVG";
    case AggregateOp::kCount:
      return "COUNT";
    case AggregateOp::kVar:
      return "VAR";
  }
  Check(false, "unknown aggregate op");
  return "";
}

std::optional<AggregateOp> ParseAggregateOp(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (AggregateOp op : {AggregateOp::kMax, AggregateOp::kMin,
                         AggregateOp::kSum, AggregateOp::kAvg,
                         AggregateOp::kCount, AggregateOp::kVar}) {
    if (upper == AggregateOpName(op)) return op;
  }
  return std::nullopt;
}

std::string AggregateSpec::ToString() const {
  std::ostringstream out;
  out << AggregateOpName(op) << "(" << AttributeName(attribute) << ")";
  return out.str();
}

PartialAggregate::PartialAggregate(AggregateSpec spec) : spec_(spec) {}

PartialAggregate PartialAggregate::OfValue(AggregateSpec spec, double value) {
  PartialAggregate record(spec);
  record.Accumulate(value);
  return record;
}

void PartialAggregate::Accumulate(double value) {
  switch (spec_.op) {
    case AggregateOp::kMax:
      acc_ = count_ == 0 ? value : std::max(acc_, value);
      break;
    case AggregateOp::kMin:
      acc_ = count_ == 0 ? value : std::min(acc_, value);
      break;
    case AggregateOp::kSum:
    case AggregateOp::kAvg:
      acc_ += value;
      break;
    case AggregateOp::kVar:
      acc_ += value;
      acc_sq_ += value * value;
      break;
    case AggregateOp::kCount:
      break;
  }
  ++count_;
}

void PartialAggregate::Merge(const PartialAggregate& other) {
  Check(spec_ == other.spec_, "PartialAggregate::Merge: spec mismatch");
  if (other.count_ == 0) return;
  switch (spec_.op) {
    case AggregateOp::kMax:
      acc_ = count_ == 0 ? other.acc_ : std::max(acc_, other.acc_);
      break;
    case AggregateOp::kMin:
      acc_ = count_ == 0 ? other.acc_ : std::min(acc_, other.acc_);
      break;
    case AggregateOp::kSum:
    case AggregateOp::kAvg:
      acc_ += other.acc_;
      break;
    case AggregateOp::kVar:
      acc_ += other.acc_;
      acc_sq_ += other.acc_sq_;
      break;
    case AggregateOp::kCount:
      break;
  }
  count_ += other.count_;
}

std::optional<double> PartialAggregate::Finalize() const {
  if (spec_.op == AggregateOp::kCount) return static_cast<double>(count_);
  if (count_ == 0) return std::nullopt;
  if (spec_.op == AggregateOp::kAvg)
    return acc_ / static_cast<double>(count_);
  if (spec_.op == AggregateOp::kVar) {
    const double n = static_cast<double>(count_);
    const double mean = acc_ / n;
    // Population variance; clamp tiny negative rounding residue.
    return std::max(0.0, acc_sq_ / n - mean * mean);
  }
  return acc_;
}

std::size_t PartialAggregate::SerializedSizeBytes() const {
  // 16-bit value fields, as in TinyDB partial state records; AVG carries a
  // sum and a count, VAR additionally a sum of squares.
  if (spec_.op == AggregateOp::kVar) return 6;
  return spec_.op == AggregateOp::kAvg ? 4 : 2;
}

}  // namespace ttmqo
