// Query integration and coverage rules (Section 3.1.2).
//
// Integrating queries q1, q2 into a synthetic query q12 must request a
// superset of the data of both, under the semantic-correctness constraints:
//
//  * two aggregation queries are only integrable when their predicates are
//    identical (the merged aggregate list is the union, the epoch the GCD);
//  * any combination involving an acquisition query merges into an
//    acquisition query that acquires the union of the attributes either
//    query needs (projections, aggregate inputs, predicate columns), the
//    integration-union of the predicates, and the GCD of the epochs —
//    aggregation answers are then derived at the base station from the raw
//    rows;
//  * two pure aggregation queries with different predicates are not
//    rewritable (Section 4.3 relies on this).
//
// Coverage (`Covers`) is the structural test behind Algorithm 1's
// `max == 1` case: a query is covered when its whole answer stream can be
// derived from another query's stream, so integrating it changes nothing in
// the network.
#pragma once

#include <optional>
#include <span>

#include "query/query.h"

namespace ttmqo {

/// True when `a` and `b` may be rewritten into one synthetic query.
bool IsRewritable(const Query& a, const Query& b);

/// True when every answer of `covered` is derivable from the answer stream
/// of `cover`: the cover's epoch divides the covered epoch, its predicates
/// select a superset, and it carries the needed attributes or aggregates.
bool Covers(const Query& cover, const Query& covered);

/// Builds the canonical synthetic network query serving every query in
/// `members` (id `id`).  The result is independent of member order.
/// Requires members to be pairwise rewritable as a group (all-aggregation
/// members must share identical predicates).
Query BuildNetworkQuery(QueryId id, std::span<const Query> members);

/// Integrates `q` into `base` (both possibly synthetic), yielding the
/// merged network query with identifier `id`; `std::nullopt` when the pair
/// is not rewritable.
std::optional<Query> Integrate(QueryId id, const Query& base, const Query& q);

}  // namespace ttmqo
