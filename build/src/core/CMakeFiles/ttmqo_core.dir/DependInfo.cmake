
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bs/cost_model.cc" "src/core/CMakeFiles/ttmqo_core.dir/bs/cost_model.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/bs/cost_model.cc.o.d"
  "/root/repo/src/core/bs/integration.cc" "src/core/CMakeFiles/ttmqo_core.dir/bs/integration.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/bs/integration.cc.o.d"
  "/root/repo/src/core/bs/result_mapper.cc" "src/core/CMakeFiles/ttmqo_core.dir/bs/result_mapper.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/bs/result_mapper.cc.o.d"
  "/root/repo/src/core/bs/rewriter.cc" "src/core/CMakeFiles/ttmqo_core.dir/bs/rewriter.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/bs/rewriter.cc.o.d"
  "/root/repo/src/core/innet/innet_engine.cc" "src/core/CMakeFiles/ttmqo_core.dir/innet/innet_engine.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/innet/innet_engine.cc.o.d"
  "/root/repo/src/core/innet/payloads.cc" "src/core/CMakeFiles/ttmqo_core.dir/innet/payloads.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/innet/payloads.cc.o.d"
  "/root/repo/src/core/ttmqo_engine.cc" "src/core/CMakeFiles/ttmqo_core.dir/ttmqo_engine.cc.o" "gcc" "src/core/CMakeFiles/ttmqo_core.dir/ttmqo_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tinydb/CMakeFiles/ttmqo_tinydb.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ttmqo_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmqo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ttmqo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ttmqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/ttmqo_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ttmqo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
