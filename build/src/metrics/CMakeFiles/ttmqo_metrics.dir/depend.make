# Empty dependencies file for ttmqo_metrics.
# This may be replaced when dependencies are built.
